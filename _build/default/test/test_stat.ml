(* Unit and property tests for msoc_stat. *)

open Msoc_stat
module Prng = Msoc_util.Prng

let approx eps = Alcotest.float eps

(* ---- Special functions (reference values from standard tables) ---- *)

let test_erf_values () =
  let cases =
    [ (0.0, 0.0);
      (0.1, 0.112462916018285);
      (0.5, 0.520499877813047);
      (1.0, 0.842700792949715);
      (2.0, 0.995322265018953);
      (3.0, 0.999977909503001) ]
  in
  List.iter
    (fun (x, expected) -> Alcotest.check (approx 1e-12) (Printf.sprintf "erf(%g)" x) expected (Special.erf x))
    cases

let test_erf_odd () =
  List.iter
    (fun x -> Alcotest.check (approx 1e-14) "erf is odd" (-.Special.erf x) (Special.erf (-.x)))
    [ 0.3; 1.2; 2.7; 4.5 ]

let test_erfc_tail () =
  Alcotest.check (approx 1e-19) "erfc(5)" 1.537459794428035e-12 (Special.erfc 5.0);
  Alcotest.check (approx 1e-30) "erfc(8)" 1.122429717298146e-29 (Special.erfc 8.0);
  Alcotest.check (approx 1e-12) "erfc(-2) = 2 - erfc(2)" (2.0 -. Special.erfc 2.0)
    (Special.erfc (-2.0))

let test_erf_erfc_complement () =
  List.iter
    (fun x ->
      Alcotest.check (approx 1e-13) "erf + erfc = 1" 1.0 (Special.erf x +. Special.erfc x))
    [ 0.1; 0.7; 1.5; 3.0; 6.0 ]

let test_probit () =
  Alcotest.check (approx 1e-10) "probit(0.5)" 0.0 (Special.probit 0.5);
  Alcotest.check (approx 1e-9) "probit(0.975)" 1.959963984540054 (Special.probit 0.975);
  Alcotest.check (approx 1e-9) "probit(0.025)" (-1.959963984540054) (Special.probit 0.025);
  Alcotest.check (approx 1e-8) "probit(1e-6)" (-4.753424308822899) (Special.probit 1e-6)

let prop_probit_cdf_roundtrip =
  QCheck.Test.make ~name:"probit inverts normal cdf" ~count:300
    (QCheck.float_range 0.001 0.999) (fun p ->
      let d = Distribution.normal ~mean:0.0 ~sigma:1.0 in
      Float.abs (Distribution.cdf d (Special.probit p) -. p) < 1e-9)

(* ---- Distributions ---- *)

let test_normal_cdf_symmetry () =
  let d = Distribution.normal ~mean:3.0 ~sigma:2.0 in
  Alcotest.check (approx 1e-12) "cdf at mean" 0.5 (Distribution.cdf d 3.0);
  Alcotest.check (approx 1e-12) "symmetry" 1.0 (Distribution.cdf d 1.0 +. Distribution.cdf d 5.0)

let test_normal_pdf_integrates () =
  let d = Distribution.normal ~mean:(-1.0) ~sigma:0.5 in
  let integral =
    Quadrature.adaptive_simpson ~f:(Distribution.pdf d) ~lo:(-6.0) ~hi:4.0 ()
  in
  Alcotest.check (approx 1e-8) "pdf integrates to 1" 1.0 integral

let test_normal_quantile () =
  let d = Distribution.normal ~mean:10.0 ~sigma:3.0 in
  Alcotest.check (approx 1e-8) "median" 10.0 (Distribution.quantile d 0.5);
  Alcotest.check (approx 1e-6) "roundtrip" 0.9
    (Distribution.cdf d (Distribution.quantile d 0.9))

let test_uniform () =
  let d = Distribution.uniform ~lo:2.0 ~hi:6.0 in
  Alcotest.check (approx 1e-12) "pdf inside" 0.25 (Distribution.pdf d 3.0);
  Alcotest.check (approx 1e-12) "pdf outside" 0.0 (Distribution.pdf d 7.0);
  Alcotest.check (approx 1e-12) "cdf mid" 0.5 (Distribution.cdf d 4.0);
  Alcotest.check (approx 1e-12) "quantile" 5.0 (Distribution.quantile d 0.75);
  Alcotest.check (approx 1e-12) "mean" 4.0 (Distribution.mean d);
  Alcotest.check (approx 1e-9) "stddev" (4.0 /. sqrt 12.0) (Distribution.stddev d)

let test_normal_of_tolerance () =
  let d = Distribution.normal_of_tolerance ~nominal:5.0 ~tol:1.5 in
  Alcotest.check (approx 1e-12) "sigma = tol/3" 0.5 (Distribution.stddev d);
  (* 99.73% of parts inside the tolerance *)
  Alcotest.check (approx 1e-4) "3-sigma mass" 0.9973
    (Distribution.prob_between d ~lo:3.5 ~hi:6.5)

let test_sampling_matches_cdf () =
  let d = Distribution.normal ~mean:2.0 ~sigma:1.0 in
  let g = Prng.create 77 in
  let n = 20000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Distribution.sample d g <= 2.5 then incr below
  done;
  Alcotest.check (approx 0.02) "empirical cdf" (Distribution.cdf d 2.5)
    (float_of_int !below /. float_of_int n)

(* ---- Quadrature ---- *)

let test_simpson_polynomial () =
  (* Simpson is exact for cubics. *)
  let f x = (2.0 *. x *. x *. x) -. (x *. x) +. 3.0 in
  let exact = (0.5 *. 16.0) -. (8.0 /. 3.0) +. 6.0 in
  Alcotest.check (approx 1e-9) "cubic exact" exact (Quadrature.simpson ~f ~lo:0.0 ~hi:2.0 ~n:8)

let test_adaptive_simpson () =
  let integral = Quadrature.adaptive_simpson ~f:sin ~lo:0.0 ~hi:Float.pi () in
  Alcotest.check (approx 1e-9) "sin over half period" 2.0 integral

let test_gauss_legendre_exactness () =
  (* n-point GL is exact for degree 2n-1. *)
  let f x = Float.pow x 9.0 in
  Alcotest.check (approx 1e-10) "x^9 odd" 0.0 (Quadrature.gauss_legendre ~f ~lo:(-1.0) ~hi:1.0 ~n:5);
  let g x = Float.pow x 8.0 in
  Alcotest.check (approx 1e-10) "x^8" (2.0 /. 9.0)
    (Quadrature.gauss_legendre ~f:g ~lo:(-1.0) ~hi:1.0 ~n:5)

let test_gauss_legendre_weights () =
  let nodes = Quadrature.gauss_legendre_nodes 16 in
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 nodes in
  Alcotest.check (approx 1e-12) "weights sum to 2" 2.0 total

let prop_simpson_linear_exact =
  QCheck.Test.make ~name:"simpson exact on affine functions" ~count:200
    (QCheck.pair (QCheck.float_range (-10.0) 10.0) (QCheck.float_range (-10.0) 10.0))
    (fun (a, b) ->
      let f x = (a *. x) +. b in
      let exact = (a *. 4.5 *. 4.5 /. 2.0) +. (b *. 4.5) in
      Float.abs (Quadrature.simpson ~f ~lo:0.0 ~hi:4.5 ~n:16 -. exact) < 1e-9)

(* ---- Describe ---- *)

let test_summarize () =
  let s = Describe.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "count" 8 s.Describe.count;
  Alcotest.check (approx 1e-12) "mean" 5.0 s.Describe.mean;
  Alcotest.check (approx 1e-9) "variance (unbiased)" (32.0 /. 7.0) s.Describe.variance;
  Alcotest.check (approx 1e-12) "min" 2.0 s.Describe.minimum;
  Alcotest.check (approx 1e-12) "max" 9.0 s.Describe.maximum

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.check (approx 1e-12) "median" 3.0 (Describe.median xs);
  Alcotest.check (approx 1e-12) "p0" 1.0 (Describe.percentile xs 0.0);
  Alcotest.check (approx 1e-12) "p100" 5.0 (Describe.percentile xs 1.0);
  Alcotest.check (approx 1e-12) "p25 interpolated" 2.0 (Describe.percentile xs 0.25)

let test_rms () =
  Alcotest.check (approx 1e-12) "rms of constant" 3.0 (Describe.rms [| 3.0; -3.0; 3.0 |]);
  Alcotest.check (approx 1e-12) "rms empty" 0.0 (Describe.rms [||])

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"welford variance matches two-pass" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let mean = Array.fold_left ( +. ) 0.0 arr /. float_of_int n in
      let naive =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 arr
        /. float_of_int (n - 1)
      in
      let s = Describe.summarize arr in
      Float.abs (s.Describe.variance -. naive) <= 1e-6 *. Float.max 1.0 naive)

(* ---- Histogram ---- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add_all h [| 0.5; 1.5; 1.7; 9.99; -1.0; 10.0 |];
  Alcotest.(check int) "total in range" 4 (Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h);
  let counts = Histogram.counts h in
  Alcotest.(check int) "bin 0" 1 counts.(0);
  Alcotest.(check int) "bin 1" 2 counts.(1);
  Alcotest.(check int) "bin 9" 1 counts.(9)

let test_histogram_density_normalised () =
  let h = Histogram.create ~lo:(-3.0) ~hi:3.0 ~bins:30 in
  let g = Prng.create 5 in
  for _ = 1 to 50000 do
    Histogram.add h (Prng.gaussian g)
  done;
  let integral =
    Array.fold_left (fun acc (_, d) -> acc +. (d *. Histogram.bin_width h)) 0.0
      (Histogram.to_series h)
  in
  Alcotest.check (approx 1e-9) "density integrates to 1" 1.0 integral;
  (* Compare the central bin with the normal pdf. *)
  let _, d = (Histogram.to_series h).(15) in
  Alcotest.check (approx 0.03) "central density ~ pdf(0)" 0.3989 d

(* ---- Monte Carlo ---- *)

let test_probability_estimate () =
  let g = Prng.create 99 in
  let e =
    Monte_carlo.estimate_probability ~trials:20000 ~rng:g ~f:(fun g -> Prng.float g < 0.3)
  in
  Alcotest.check (approx 0.02) "probability" 0.3 e.Monte_carlo.p;
  Alcotest.(check bool) "CI sane" true
    (e.Monte_carlo.half_width_95 > 0.0 && e.Monte_carlo.half_width_95 < 0.02)

let test_mean_estimate () =
  let g = Prng.create 123 in
  let e =
    Monte_carlo.estimate_mean ~trials:20000 ~rng:g ~f:(fun g -> Prng.uniform g ~lo:0.0 ~hi:2.0)
  in
  Alcotest.check (approx 0.02) "mean" 1.0 e.Monte_carlo.mean;
  Alcotest.check (approx 0.02) "stddev" (2.0 /. sqrt 12.0) e.Monte_carlo.stddev

let test_sample_array () =
  let g = Prng.create 7 in
  let xs = Monte_carlo.sample_array ~trials:100 ~rng:g ~f:(fun g -> Prng.float g) in
  Alcotest.(check int) "length" 100 (Array.length xs)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "msoc_stat"
    [ ( "special",
        Alcotest.test_case "erf table values" `Quick test_erf_values
        :: Alcotest.test_case "erf odd" `Quick test_erf_odd
        :: Alcotest.test_case "erfc tails" `Quick test_erfc_tail
        :: Alcotest.test_case "erf+erfc" `Quick test_erf_erfc_complement
        :: Alcotest.test_case "probit" `Quick test_probit
        :: qcheck [ prop_probit_cdf_roundtrip ] );
      ( "distribution",
        [ Alcotest.test_case "normal cdf symmetry" `Quick test_normal_cdf_symmetry;
          Alcotest.test_case "normal pdf integral" `Quick test_normal_pdf_integrates;
          Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "normal of tolerance" `Quick test_normal_of_tolerance;
          Alcotest.test_case "sampling matches cdf" `Quick test_sampling_matches_cdf ] );
      ( "quadrature",
        Alcotest.test_case "simpson cubic" `Quick test_simpson_polynomial
        :: Alcotest.test_case "adaptive simpson" `Quick test_adaptive_simpson
        :: Alcotest.test_case "gauss-legendre exactness" `Quick test_gauss_legendre_exactness
        :: Alcotest.test_case "gauss-legendre weights" `Quick test_gauss_legendre_weights
        :: qcheck [ prop_simpson_linear_exact ] );
      ( "describe",
        Alcotest.test_case "summarize" `Quick test_summarize
        :: Alcotest.test_case "percentile" `Quick test_percentile
        :: Alcotest.test_case "rms" `Quick test_rms
        :: qcheck [ prop_welford_matches_naive ] );
      ( "histogram",
        [ Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "density normalised" `Quick test_histogram_density_normalised ] );
      ( "monte-carlo",
        [ Alcotest.test_case "probability estimate" `Quick test_probability_estimate;
          Alcotest.test_case "mean estimate" `Quick test_mean_estimate;
          Alcotest.test_case "sample array" `Quick test_sample_array ] ) ]
