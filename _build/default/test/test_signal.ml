(* Unit tests for msoc_signal: the signal-attribute model. *)

open Msoc_signal
module I = Msoc_util.Interval
module Prng = Msoc_util.Prng
module Units = Msoc_util.Units

let approx eps = Alcotest.float eps

let test_constructors () =
  let s = Attr.single_tone ~freq_hz:1e6 ~power_dbm:(-20.0) () in
  Alcotest.(check int) "one tone" 1 (List.length s.Attr.tones);
  let tt = Attr.two_tone ~f1_hz:1e6 ~f2_hz:1.1e6 ~power_dbm:(-20.0) () in
  Alcotest.(check int) "two tones" 2 (List.length tt.Attr.tones);
  let empty = Attr.silence () in
  Alcotest.(check int) "silence" 0 (List.length empty.Attr.tones);
  Alcotest.check (approx 1e-9) "thermal default" (-174.0) empty.Attr.noise_dbm

let test_tone_near () =
  let s = Attr.two_tone ~f1_hz:90e3 ~f2_hz:110e3 ~power_dbm:(-10.0) () in
  (match Attr.tone_near s ~freq_hz:91e3 ~within_hz:5e3 with
  | Some tn -> Alcotest.check (approx 1.0) "found f1" 90e3 (I.mid tn.Attr.freq_hz)
  | None -> Alcotest.fail "expected tone near 91 kHz");
  Alcotest.(check bool) "nothing at 150k" true
    (Attr.tone_near s ~freq_hz:150e3 ~within_hz:5e3 = None)

let test_total_power_sums () =
  (* two equal tones: composite power is +3.01 dB *)
  let s = Attr.two_tone ~f1_hz:1e3 ~f2_hz:2e3 ~power_dbm:(-10.0) () in
  Alcotest.check (approx 0.02) "3 dB sum" (-6.99) (Attr.total_tone_power_dbm s);
  Alcotest.check (approx 1e-6) "empty" (-400.0) (Attr.total_tone_power_dbm (Attr.silence ()))

let test_snr_tracks_noise () =
  let s = Attr.single_tone ~noise_dbm:(-60.0) ~freq_hz:1e3 ~power_dbm:(-10.0) () in
  Alcotest.check (approx 1e-6) "snr" 50.0 (I.mid (Attr.snr_db s))

let test_spur_bookkeeping () =
  let s = Attr.single_tone ~freq_hz:1e3 ~power_dbm:0.0 () in
  let spur_tone = Attr.tone ~freq_hz:3e3 ~power_dbm:(-40.0) () in
  let s = Attr.add_spur s (Attr.Harmonic 3) spur_tone in
  Alcotest.check (approx 1e-9) "worst spur" (-40.0) (Attr.worst_spur_dbm s);
  Alcotest.check (approx 1e-9) "sfdr" 40.0 (Attr.sfdr_db s);
  (match Attr.spur_near s ~freq_hz:3e3 ~within_hz:100.0 with
  | Some spur ->
    (match spur.Attr.origin with
    | Attr.Harmonic 3 -> ()
    | Attr.Harmonic _ | Attr.Intermod3 | Attr.Lo_leakage | Attr.Clock_spur | Attr.Alias ->
      Alcotest.fail "wrong origin")
  | None -> Alcotest.fail "spur not found")

let test_map_tones_covers_spurs () =
  let s = Attr.single_tone ~freq_hz:1e3 ~power_dbm:0.0 () in
  let s = Attr.add_spur s Attr.Clock_spur (Attr.tone ~freq_hz:5e3 ~power_dbm:(-50.0) ()) in
  let shifted =
    Attr.map_tones s ~f:(fun tn -> { tn with Attr.freq_hz = I.scale 2.0 tn.Attr.freq_hz })
  in
  (match shifted.Attr.tones with
  | [ tn ] -> Alcotest.check (approx 1e-9) "tone scaled" 2e3 (I.mid tn.Attr.freq_hz)
  | _ -> Alcotest.fail "tone count");
  match shifted.Attr.spurs with
  | [ spur ] -> Alcotest.check (approx 1e-9) "spur scaled" 10e3 (I.mid spur.Attr.tone.Attr.freq_hz)
  | _ -> Alcotest.fail "spur count"

let test_accuracy_accessors () =
  let tn =
    { Attr.freq_hz = I.of_err 1e6 ~err:200.0;
      power_dbm = I.of_err (-10.0) ~err:1.5;
      phase_rad = I.point 0.0 }
  in
  Alcotest.check (approx 1e-9) "freq accuracy" 200.0 (Attr.freq_accuracy_hz tn);
  Alcotest.check (approx 1e-9) "power accuracy" 1.5 (Attr.power_accuracy_db tn)

let test_waveform_realises_attributes () =
  (* The synthesized waveform's spectrum must reproduce the tracked tone
     power and noise floor. *)
  let fs = 1e6 and n = 4096 in
  let f = Msoc_dsp.Tone.coherent_frequency ~sample_rate:fs ~samples:n ~target:100e3 in
  let s = Attr.single_tone ~noise_dbm:(-60.0) ~freq_hz:f ~power_dbm:(-10.0) () in
  let rng = Prng.create 44 in
  let wave = Attr.waveform s ~sample_rate:fs ~samples:n ~rng in
  let sp = Msoc_dsp.Spectrum.analyze ~sample_rate:fs wave in
  let tone_power_v2 = Msoc_dsp.Spectrum.tone_power sp ~freq:f in
  let expected_v2 =
    let vp = Units.vpeak_of_dbm (-10.0) in
    vp *. vp /. 2.0
  in
  Alcotest.check (approx (expected_v2 /. 20.0)) "tone power realised" expected_v2 tone_power_v2;
  let snr = Msoc_dsp.Metrics.snr_db sp ~fundamental:f in
  Alcotest.check (Alcotest.float 1.5) "snr realised" 50.0 snr

let test_waveform_dc () =
  let s = { (Attr.silence ~noise_dbm:(-400.0) ()) with Attr.dc_volts = I.point 0.25 } in
  let rng = Prng.create 1 in
  let wave = Attr.waveform s ~sample_rate:1e3 ~samples:16 ~rng in
  Array.iter (fun v -> Alcotest.check (approx 1e-9) "dc" 0.25 v) wave

let test_pp_smoke () =
  let s = Attr.two_tone ~f1_hz:90e3 ~f2_hz:110e3 ~power_dbm:(-27.0) () in
  let s = Attr.add_spur s Attr.Intermod3 (Attr.tone ~freq_hz:70e3 ~power_dbm:(-80.0) ()) in
  let text = Format.asprintf "%a" Attr.pp s in
  Alcotest.(check bool) "pp nonempty" true (String.length text > 20)

let () =
  Alcotest.run "msoc_signal"
    [ ( "attr",
        [ Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "tone_near" `Quick test_tone_near;
          Alcotest.test_case "total power" `Quick test_total_power_sums;
          Alcotest.test_case "snr" `Quick test_snr_tracks_noise;
          Alcotest.test_case "spurs" `Quick test_spur_bookkeeping;
          Alcotest.test_case "map_tones" `Quick test_map_tones_covers_spurs;
          Alcotest.test_case "accuracy accessors" `Quick test_accuracy_accessors;
          Alcotest.test_case "waveform realises attributes" `Quick
            test_waveform_realises_attributes;
          Alcotest.test_case "waveform dc" `Quick test_waveform_dc;
          Alcotest.test_case "pp" `Quick test_pp_smoke ] ) ]
