test/test_stat.mli:
