test/test_util.ml: Alcotest Array Float Floatx Format Interval List Msoc_util Prng QCheck QCheck_alcotest String Texttable Units
