test/test_stat.ml: Alcotest Array Describe Distribution Float Gen Histogram List Monte_carlo Msoc_stat Msoc_util Printf QCheck QCheck_alcotest Quadrature Special
