test/test_signal.ml: Alcotest Array Attr Format List Msoc_dsp Msoc_signal Msoc_util String
