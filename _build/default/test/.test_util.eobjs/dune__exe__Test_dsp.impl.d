test/test_dsp.ml: Alcotest Array Biquad Cic Complex Fft Fir Float Goertzel List Metrics Msoc_dsp Msoc_util QCheck QCheck_alcotest Spectrum Tone Window
