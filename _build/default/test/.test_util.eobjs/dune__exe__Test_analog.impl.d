test/test_analog.ml: Adc Alcotest Amplifier Array Context Float List Local_osc Lpf Mixer Msoc_analog Msoc_dsp Msoc_signal Msoc_util Nonlin Param Path Printf Sigma_delta
