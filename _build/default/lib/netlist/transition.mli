(** Transition (gross-delay) fault coverage.

    The paper's fault list is "structural faults, stuck-at or delay".  A
    gross transition-delay fault on a net — slow-to-rise or slow-to-fall —
    is detected when the net is driven through the failing transition and
    the wrong (late) value propagates to an output.  Under the standard
    launch-off-capture abstraction this reduces to: slow-to-rise at [n] is
    covered iff the stuck-at-0 fault at [n] is detected in some cycle whose
    predecessor held [n] at 0 (the transition is launched) — which a long
    functional stimulus satisfies whenever the net toggles and the
    stuck-at fault is observable.  This module implements that
    toggle-qualified bound. *)

type polarity = Slow_to_rise | Slow_to_fall

type t = { node : Netlist.node; polarity : polarity }

val universe : Netlist.t -> t array
(** Both polarities on every non-constant node. *)

type result = {
  total : int;
  covered : int;
  coverage : float;
  untoggled : int;   (** Faults whose launch transition never occurred. *)
  unobserved : int;  (** Toggled, but the stuck value is not observable. *)
}

val coverage :
  Netlist.t ->
  output:string ->
  drive:(Logic_sim.t -> int -> unit) ->
  samples:int ->
  faults:t array ->
  result
(** Simulate the fault-free machine once to record per-node toggle
    activity, fault-simulate the corresponding stuck-at faults, and combine:
    a transition fault is covered iff its launch transition occurs and its
    captured stuck-at fault is detected. *)
