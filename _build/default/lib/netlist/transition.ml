type polarity = Slow_to_rise | Slow_to_fall

type t = { node : Netlist.node; polarity : polarity }

let universe circuit =
  let acc = ref [] in
  for node = Netlist.node_count circuit - 1 downto 0 do
    match Netlist.kind circuit node with
    | Netlist.Const0 | Netlist.Const1 -> ()
    | Netlist.Input | Netlist.And2 | Netlist.Or2 | Netlist.Nand2 | Netlist.Nor2
    | Netlist.Xor2 | Netlist.Xnor2 | Netlist.Not | Netlist.Buf | Netlist.Dff ->
      acc := { node; polarity = Slow_to_rise } :: { node; polarity = Slow_to_fall } :: !acc
  done;
  Array.of_list !acc

type result = {
  total : int;
  covered : int;
  coverage : float;
  untoggled : int;
  unobserved : int;
}

(* Record, per node, whether a rising and a falling transition occur in the
   fault-free run. *)
let toggle_activity circuit ~drive ~samples =
  let n = Netlist.node_count circuit in
  let rises = Array.make n false and falls = Array.make n false in
  let previous = Array.make n 0 in
  let sim = Logic_sim.create circuit in
  for cycle = 0 to samples - 1 do
    drive sim cycle;
    Logic_sim.eval sim;
    for node = 0 to n - 1 do
      let v = Logic_sim.value sim node land 1 in
      if cycle > 0 then begin
        if v = 1 && previous.(node) = 0 then rises.(node) <- true;
        if v = 0 && previous.(node) = 1 then falls.(node) <- true
      end;
      previous.(node) <- v
    done;
    Logic_sim.tick sim
  done;
  (rises, falls)

let coverage circuit ~output ~drive ~samples ~faults =
  let rises, falls = toggle_activity circuit ~drive ~samples in
  (* stuck-at detection map for the corresponding capture faults:
     slow-to-rise captures the old 0 => stuck-at-0 *)
  let stuck_faults =
    Array.map
      (fun f ->
        { Fault.node = f.node;
          stuck = (match f.polarity with Slow_to_rise -> false | Slow_to_fall -> true) })
      faults
  in
  let detected = Fault_sim.detect_exact circuit ~output ~drive ~samples ~faults:stuck_faults in
  let covered = ref 0 and untoggled = ref 0 and unobserved = ref 0 in
  Array.iteri
    (fun i f ->
      let launched =
        match f.polarity with Slow_to_rise -> rises.(f.node) | Slow_to_fall -> falls.(f.node)
      in
      if not launched then incr untoggled
      else if not detected.(i) then incr unobserved
      else incr covered)
    faults;
  { total = Array.length faults;
    covered = !covered;
    coverage = float_of_int !covered /. float_of_int (max 1 (Array.length faults));
    untoggled = !untoggled;
    unobserved = !unobserved }
