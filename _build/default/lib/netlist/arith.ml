module B = Netlist.Builder

type bus = Netlist.node array

let const_bus b ~width value =
  let fits =
    if value >= 0 then value < 1 lsl (width - 1) else -value <= 1 lsl (width - 1)
  in
  if not fits then invalid_arg "Arith.const_bus: value does not fit";
  Array.init width (fun i -> B.const b ((value lsr i) land 1 = 1))

let sign_extend b bus ~width =
  let w = Array.length bus in
  assert (width >= w);
  if width = w then bus
  else begin
    let sign = bus.(w - 1) in
    Array.init width (fun i -> if i < w then bus.(i) else B.buf b sign)
  end

let full_adder b x y cin =
  let x_xor_y = B.gate2 b Netlist.Xor2 x y in
  let sum = B.gate2 b Netlist.Xor2 x_xor_y cin in
  let carry_xy = B.gate2 b Netlist.And2 x y in
  let carry_cin = B.gate2 b Netlist.And2 x_xor_y cin in
  let carry = B.gate2 b Netlist.Or2 carry_xy carry_cin in
  (sum, carry)

let ripple_add b x y ~cin =
  let w = Array.length x in
  assert (Array.length y = w);
  let sum = Array.make w 0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder b x.(i) y.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  sum

let add_signed b x y ~width =
  let xe = sign_extend b x ~width and ye = sign_extend b y ~width in
  ripple_add b xe ye ~cin:(B.const b false)

let sub_signed b x y ~width =
  let xe = sign_extend b x ~width and ye = sign_extend b y ~width in
  let ny = Array.map (fun n -> B.not_ b n) ye in
  ripple_add b xe ny ~cin:(B.const b true)

let negate b x ~width =
  let zero = const_bus b ~width 0 in
  sub_signed b zero (sign_extend b x ~width) ~width

let shift_left b bus ~by =
  assert (by >= 0);
  if by = 0 then bus
  else begin
    let zero = B.const b false in
    Array.init (Array.length bus + by) (fun i -> if i < by then zero else bus.(i - by))
  end

(* Canonical signed digits: scan LSB to MSB; an odd remainder becomes +1 or
   -1 chosen so the remainder stays divisible by 4, which forbids adjacent
   nonzero digits. *)
let csd_digits value =
  let rec loop c weight acc =
    if c = 0 then List.rev acc
    else if c land 1 = 0 then loop (c asr 1) (weight + 1) acc
    else begin
      let digit = 2 - (c land 3) in
      (* digit = +1 when c mod 4 = 1, -1 when c mod 4 = 3 *)
      loop ((c - digit) asr 1) (weight + 1) ((weight, digit) :: acc)
    end
  in
  loop value 0 []

let width_for_product ~input_width ~coeff =
  if coeff = 0 then 1
  else begin
    (* Largest magnitude of coeff * x for x in [-2^(w-1), 2^(w-1) - 1]. *)
    let max_mag = abs coeff * (1 lsl (input_width - 1)) in
    let rec bits_needed v acc = if v = 0 then acc else bits_needed (v lsr 1) (acc + 1) in
    bits_needed max_mag 0 + 1
  end

let width_for_sum ~widths =
  match widths with
  | [] -> 1
  | _ ->
    let widest = List.fold_left max 1 widths in
    let count = List.length widths in
    let rec log2_ceil v acc = if v <= 1 then acc else log2_ceil ((v + 1) / 2) (acc + 1) in
    widest + log2_ceil count 0

let scale_const b bus ~coeff ~width =
  if coeff = 0 then const_bus b ~width 0
  else begin
    let terms = csd_digits coeff in
    let shifted weight = sign_extend b (shift_left b bus ~by:weight) ~width in
    match terms with
    | [] -> const_bus b ~width 0
    | (w0, d0) :: rest ->
      let first =
        if d0 = 1 then shifted w0 else negate b (shift_left b bus ~by:w0) ~width
      in
      List.fold_left
        (fun acc (w, d) ->
          if d = 1 then add_signed b acc (shifted w) ~width
          else sub_signed b acc (shifted w) ~width)
        first rest
  end

let multiply_signed b x y =
  let wx = Array.length x and wy = Array.length y in
  assert (wx >= 2 && wy >= 2);
  let width = wx + wy in
  let xe = sign_extend b x ~width in
  (* row j: (x << j) masked by y_j, truncated back to the product width;
     the sign row (j = wy-1) is subtracted, which is exactly the signed
     weight of y's top bit. *)
  let row j =
    let shifted = shift_left b xe ~by:j in
    Array.init width (fun i -> B.gate2 b Netlist.And2 shifted.(i) y.(j))
  in
  let acc = ref (row 0) in
  for j = 1 to wy - 2 do
    acc := ripple_add b !acc (row j) ~cin:(B.const b false)
  done;
  let sign_row = row (wy - 1) in
  let complemented = Array.map (fun n -> B.not_ b n) sign_row in
  ripple_add b !acc complemented ~cin:(B.const b true)

let register_bus b bus = Array.map (fun n -> B.dff b n) bus
