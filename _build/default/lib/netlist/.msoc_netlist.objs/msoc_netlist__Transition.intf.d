lib/netlist/transition.mli: Logic_sim Netlist
