lib/netlist/fir_netlist.mli: Fault Logic_sim Netlist
