lib/netlist/logic_sim.ml: Array Netlist
