lib/netlist/fault.ml: Array Bool Format Hashtbl Int List Netlist
