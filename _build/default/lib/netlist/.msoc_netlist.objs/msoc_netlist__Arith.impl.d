lib/netlist/arith.ml: Array List Netlist
