lib/netlist/atpg_lite.ml: Array Fault_sim List Logic_sim Msoc_util Netlist
