lib/netlist/logic_sim.mli: Netlist
