lib/netlist/arith.mli: Netlist
