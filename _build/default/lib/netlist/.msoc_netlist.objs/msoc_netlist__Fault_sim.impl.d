lib/netlist/fault_sim.ml: Array Fault List Logic_sim Netlist
