lib/netlist/fault_sim.mli: Fault Logic_sim Netlist
