lib/netlist/fir_netlist.ml: Arith Array Fault Float List Logic_sim Netlist Printf
