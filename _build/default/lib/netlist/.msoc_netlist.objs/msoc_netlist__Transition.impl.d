lib/netlist/transition.ml: Array Fault Fault_sim Logic_sim Netlist
