lib/netlist/netlist_io.ml: Array Buffer Hashtbl In_channel List Netlist Out_channel Printf String
