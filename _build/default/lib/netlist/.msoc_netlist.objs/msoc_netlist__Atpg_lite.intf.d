lib/netlist/atpg_lite.mli: Fault Netlist
