(** Text serialization of netlists, in an ISCAS89-like format.

    One declaration per line:
    {v
    # comment
    INPUT(n3)
    OUTPUT(y 12 7 3)        # named bus, LSB first
    n5 = AND(n3, n4)
    n6 = NOT(n5)
    n7 = DFF(n6)
    n8 = CONST0
    v}

    Node names are [n<id>] with ids dense from 0 in definition order, so a
    dump/parse round trip reproduces the netlist exactly (same ids, same
    order).  The format exists so synthesized filters can be archived,
    diffed, and exchanged with external structural tools. *)

val to_string : Netlist.t -> string
val output : out_channel -> Netlist.t -> unit

val of_string : string -> Netlist.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val input : in_channel -> Netlist.t

val save : string -> Netlist.t -> unit
(** Write to a file path. *)

val load : string -> Netlist.t
