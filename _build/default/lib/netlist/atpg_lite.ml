module Prng = Msoc_util.Prng

type config = {
  patterns : int;
  seed : int;
  weights : float array option;
}

let default_config = { patterns = 1024; seed = 7; weights = None }

type result = {
  total : int;
  detected : int;
  coverage : float;
  detected_flags : bool array;
  patterns_used : int;
}

(* Pre-generate the random stimulus as per-input bit arrays so every batch
   of the fault simulation replays the identical sequence. *)
let stimulus_table circuit config =
  let inputs = Netlist.inputs circuit in
  let g = Prng.create config.seed in
  (match config.weights with
  | Some w ->
    if Array.length w <> Array.length inputs then
      invalid_arg "Atpg_lite: weights length must match the input count"
  | None -> ());
  Array.init config.patterns (fun _ ->
      Array.mapi
        (fun i (_, node) ->
          let p = match config.weights with Some w -> w.(i) | None -> 0.5 in
          (node, Prng.float g < p))
        inputs)

let grade circuit ~output ~faults config =
  assert (config.patterns > 0);
  let table = stimulus_table circuit config in
  let drive sim cycle =
    Array.iter
      (fun (node, bit) -> Logic_sim.drive_node sim node (if bit then -1 else 0))
      table.(cycle)
  in
  let flags =
    Fault_sim.detect_exact circuit ~output ~drive ~samples:config.patterns ~faults
  in
  let detected = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 flags in
  { total = Array.length faults;
    detected;
    coverage = float_of_int detected /. float_of_int (max 1 (Array.length faults));
    detected_flags = flags;
    patterns_used = config.patterns }

let grade_until circuit ~output ~faults config ~target_coverage ~max_patterns =
  let rec attempt patterns =
    let result = grade circuit ~output ~faults { config with patterns } in
    if result.coverage >= target_coverage || patterns >= max_patterns then result
    else attempt (min max_patterns (patterns * 2))
  in
  attempt config.patterns

let union_coverage gradings =
  match gradings with
  | [] -> 0
  | first :: _ ->
    let n = Array.length first in
    let count = ref 0 in
    for i = 0 to n - 1 do
      if List.exists (fun flags -> flags.(i)) gradings then incr count
    done;
    !count
