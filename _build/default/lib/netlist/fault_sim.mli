(** Batched parallel fault simulation.

    Packs the fault-free machine into lane 0 and up to 62 faulty machines
    into lanes 1..62 of each simulation pass, replays the stimulus once per
    batch, and returns the full output stream of every machine — the form
    the spectral detection of the paper needs (the detector compares output
    {e spectra}, not samples). *)

type run = {
  faults : Fault.t array;
  good_stream : int array;          (** Fault-free output, one value/cycle. *)
  fault_streams : int array array;  (** [fault_streams.(i)] matches [faults.(i)]. *)
}

val run :
  Netlist.t ->
  output:string ->
  drive:(Logic_sim.t -> int -> unit) ->
  samples:int ->
  faults:Fault.t array ->
  run
(** Simulate [samples] cycles.  [drive sim cycle] must set all inputs for
    the given cycle (typically via {!Logic_sim.drive_bus}); [output] names
    the observed bus.  Raises [Not_found] for an unknown output name. *)

val run_fold :
  Netlist.t ->
  output:string ->
  drive:(Logic_sim.t -> int -> unit) ->
  samples:int ->
  faults:Fault.t array ->
  on_fault:(int -> Fault.t -> int array -> unit) ->
  int array
(** Streaming variant of {!run}: [on_fault index fault stream] is invoked
    once per fault as soon as its batch completes ([stream] is only valid
    during the callback — copy it to retain it); returns the fault-free
    stream.  Memory stays bounded by one batch regardless of fault count. *)

val detect_exact :
  Netlist.t ->
  output:string ->
  drive:(Logic_sim.t -> int -> unit) ->
  samples:int ->
  faults:Fault.t array ->
  bool array
(** Cheap time-domain detection: a fault is detected as soon as its output
    differs from the fault-free output in any cycle.  Batches stop early
    once all their lanes have been detected. *)
