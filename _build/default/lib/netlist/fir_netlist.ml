module B = Netlist.Builder

type role = Multiplier | Register | Adder

type architecture = Transposed | Direct

type region = {
  tap : int;
  role : role;
  first_node : Netlist.node;
  last_node : Netlist.node;
}

type t = {
  circuit : Netlist.t;
  coeffs : int array;
  width_in : int;
  width_acc : int;
  scale : float;
  regions : region list;
}

let input_bus_name = "x"
let output_bus_name = "y"

let role_name = function
  | Multiplier -> "multiplier"
  | Register -> "register"
  | Adder -> "adder"

let create ~coeffs ~width_in ?(scale = 1.0) ?(architecture = Transposed) () =
  let taps = Array.length coeffs in
  if taps < 1 then invalid_arg "Fir_netlist.create: no taps";
  if width_in < 2 then invalid_arg "Fir_netlist.create: width_in too small";
  (* Minimal datapath widths: each partial sum s_k = sum_{j>=k} c_j x[.] is
     bounded by (sum_{j>=k} |c_j|) * |x|_max, so the register/adder chain
     grows only as far as that suffix bound requires — no dead constant
     sign bits for stuck-at faults to hide on. *)
  let bits_for_magnitude m =
    let rec loop v acc = if v = 0 then acc else loop (v lsr 1) (acc + 1) in
    loop (max m 1) 0 + 1
  in
  let max_x = 1 lsl (width_in - 1) in
  let suffix_width k =
    let rec total j = if j >= taps then 0 else abs coeffs.(j) + total (j + 1) in
    bits_for_magnitude (max 1 (total k) * max_x)
  in
  let width_acc = suffix_width 0 in
  let b = B.create () in
  let regions = ref [] in
  let record tap role body =
    let first_node = B.node_count b in
    let result = body () in
    let last_node = B.node_count b - 1 in
    if last_node >= first_node then
      regions := { tap; role; first_node; last_node } :: !regions;
    result
  in
  let x = Array.init width_in (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let y =
    match architecture with
    | Transposed ->
      (* s_{K-1} = c_{K-1} x; s_k = c_k x + delay(s_{k+1}); y = s_0. *)
      let products =
        Array.mapi
          (fun tap c ->
            let width = Arith.width_for_product ~input_width:width_in ~coeff:c in
            record tap Multiplier (fun () -> Arith.scale_const b x ~coeff:c ~width))
          coeffs
      in
      let tail = ref products.(taps - 1) in
      for tap = taps - 2 downto 0 do
        let delayed = record (tap + 1) Register (fun () -> Arith.register_bus b !tail) in
        tail :=
          record tap Adder (fun () ->
              Arith.add_signed b products.(tap) delayed ~width:(suffix_width tap))
      done;
      Arith.sign_extend b !tail ~width:width_acc
    | Direct ->
      (* Input delay line, per-tap constant multipliers, balanced adder
         tree.  Tree node widths grow with the magnitude bound of the
         coefficients they cover. *)
      let delayed = Array.make taps x in
      for tap = 1 to taps - 1 do
        delayed.(tap) <-
          record tap Register (fun () -> Arith.register_bus b delayed.(tap - 1))
      done;
      let products =
        Array.mapi
          (fun tap c ->
            let width = Arith.width_for_product ~input_width:width_in ~coeff:c in
            record tap Multiplier (fun () ->
                Arith.scale_const b delayed.(tap) ~coeff:c ~width))
          coeffs
      in
      (* pairwise reduction; each level's width covers the summed |c| *)
      let rec reduce level nodes bounds =
        match (nodes, bounds) with
        | [ single ], _ -> single
        | _ ->
          let rec pair ns bs index acc_nodes acc_bounds =
            match (ns, bs) with
            | [], [] -> (List.rev acc_nodes, List.rev acc_bounds)
            | [ last ], [ bound ] -> (List.rev (last :: acc_nodes), List.rev (bound :: acc_bounds))
            | a :: c :: rest, ba :: bc :: brest ->
              let bound = ba + bc in
              let width = bits_for_magnitude (bound * max_x) in
              let sum =
                record index Adder (fun () -> Arith.add_signed b a c ~width)
              in
              pair rest brest (index + 1) (sum :: acc_nodes) (bound :: acc_bounds)
            | _, _ -> invalid_arg "Fir_netlist: tree bookkeeping"
          in
          let next_nodes, next_bounds = pair nodes bounds (level * taps) [] [] in
          reduce (level + 1) next_nodes next_bounds
      in
      let sum =
        reduce 1 (Array.to_list products)
          (Array.to_list (Array.map (fun c -> max 1 (abs c)) coeffs))
      in
      Arith.sign_extend b sum ~width:width_acc
  in
  B.output b input_bus_name x;
  B.output b output_bus_name y;
  { circuit = Netlist.freeze b;
    coeffs = Array.copy coeffs;
    width_in;
    width_acc;
    scale;
    regions = List.rev !regions }

let input_bus t = Netlist.find_output t.circuit input_bus_name
let output_bus t = Netlist.find_output t.circuit output_bus_name

let region_of_node t node =
  List.find_opt (fun r -> node >= r.first_node && node <= r.last_node) t.regions

let fault_site t ~tap ~role =
  let region = List.find (fun r -> r.tap = tap && r.role = role) t.regions in
  { Fault.node = (region.first_node + region.last_node) / 2; stuck = true }

let clamp_input t v =
  let lo = -(1 lsl (t.width_in - 1)) and hi = (1 lsl (t.width_in - 1)) - 1 in
  if v < lo then lo else if v > hi then hi else v

let drive t sim sample = Logic_sim.drive_bus sim (input_bus t) (clamp_input t sample)

let response t xs =
  let taps = Array.length t.coeffs in
  Array.init (Array.length xs) (fun n ->
      let acc = ref 0 in
      for k = 0 to min (taps - 1) n do
        acc := !acc + (t.coeffs.(k) * clamp_input t xs.(n - k))
      done;
      !acc)

let quantize_input t ~full_scale v =
  assert (full_scale > 0.0);
  let half_range = float_of_int (1 lsl (t.width_in - 1)) in
  let code = int_of_float (Float.round (v /. full_scale *. (half_range -. 1.0))) in
  clamp_input t code

let output_to_float t ~full_scale y =
  let half_range = float_of_int (1 lsl (t.width_in - 1)) in
  float_of_int y *. t.scale *. full_scale /. (half_range -. 1.0)
