type t = { node : Netlist.node; stuck : bool }

let equal a b = a.node = b.node && Bool.equal a.stuck b.stuck

let compare a b =
  match Int.compare a.node b.node with 0 -> Bool.compare a.stuck b.stuck | c -> c

let pp ppf f = Format.fprintf ppf "n%d/sa%d" f.node (if f.stuck then 1 else 0)

let universe circuit =
  let acc = ref [] in
  for node = Netlist.node_count circuit - 1 downto 0 do
    match Netlist.kind circuit node with
    | Netlist.Const0 | Netlist.Const1 -> ()
    | Netlist.Input | Netlist.And2 | Netlist.Or2 | Netlist.Nand2 | Netlist.Nor2
    | Netlist.Xor2 | Netlist.Xnor2 | Netlist.Not | Netlist.Buf | Netlist.Dff ->
      acc := { node; stuck = false } :: { node; stuck = true } :: !acc
  done;
  Array.of_list !acc

(* Walk a fault backwards through single-input gates while the driver feeds
   only this gate; NOT flips the stuck polarity. *)
let rec representative circuit f =
  match Netlist.kind circuit f.node with
  | Netlist.Buf | Netlist.Not | Netlist.Dff ->
    let driver = (Netlist.fanin circuit f.node).(0) in
    let driver_is_const =
      match Netlist.kind circuit driver with
      | Netlist.Const0 | Netlist.Const1 -> true
      | Netlist.Input | Netlist.And2 | Netlist.Or2 | Netlist.Nand2 | Netlist.Nor2
      | Netlist.Xor2 | Netlist.Xnor2 | Netlist.Not | Netlist.Buf | Netlist.Dff -> false
    in
    if driver_is_const || Netlist.fanout_count circuit driver <> 1 then f
    else begin
      let stuck =
        match Netlist.kind circuit f.node with Netlist.Not -> not f.stuck | _ -> f.stuck
      in
      representative circuit { node = driver; stuck }
    end
  | Netlist.Input | Netlist.Const0 | Netlist.Const1 | Netlist.And2 | Netlist.Or2
  | Netlist.Nand2 | Netlist.Nor2 | Netlist.Xor2 | Netlist.Xnor2 -> f

let collapse circuit faults =
  let seen = Hashtbl.create (Array.length faults) in
  let keep = ref [] in
  Array.iter
    (fun f ->
      let r = representative circuit f in
      let key = (r.node, r.stuck) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        keep := r :: !keep
      end)
    faults;
  Array.of_list (List.rev !keep)
