let kind_keyword = function
  | Netlist.Input -> "INPUT"
  | Netlist.Const0 -> "CONST0"
  | Netlist.Const1 -> "CONST1"
  | Netlist.And2 -> "AND"
  | Netlist.Or2 -> "OR"
  | Netlist.Nand2 -> "NAND"
  | Netlist.Nor2 -> "NOR"
  | Netlist.Xor2 -> "XOR"
  | Netlist.Xnor2 -> "XNOR"
  | Netlist.Not -> "NOT"
  | Netlist.Buf -> "BUF"
  | Netlist.Dff -> "DFF"

let to_string t =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "# msoc netlist v1\n";
  Array.iter
    (fun (name, node) -> Buffer.add_string buffer (Printf.sprintf "INPUT(%s n%d)\n" name node))
    (Netlist.inputs t);
  for node = 0 to Netlist.node_count t - 1 do
    match Netlist.kind t node with
    | Netlist.Input -> () (* already declared *)
    | Netlist.Const0 | Netlist.Const1 ->
      Buffer.add_string buffer
        (Printf.sprintf "n%d = %s\n" node (kind_keyword (Netlist.kind t node)))
    | (Netlist.And2 | Netlist.Or2 | Netlist.Nand2 | Netlist.Nor2 | Netlist.Xor2
      | Netlist.Xnor2 | Netlist.Not | Netlist.Buf | Netlist.Dff) as kind ->
      let fanin = Netlist.fanin t node in
      let args =
        String.concat ", " (Array.to_list (Array.map (Printf.sprintf "n%d") fanin))
      in
      Buffer.add_string buffer (Printf.sprintf "n%d = %s(%s)\n" node (kind_keyword kind) args)
  done;
  Array.iter
    (fun (name, bus) ->
      let ids = String.concat " " (Array.to_list (Array.map string_of_int bus)) in
      Buffer.add_string buffer (Printf.sprintf "OUTPUT(%s %s)\n" name ids))
    (Netlist.outputs t);
  Buffer.contents buffer

let output channel t = output_string channel (to_string t)

let parse_error line_number message =
  failwith (Printf.sprintf "Netlist_io: line %d: %s" line_number message)

let kind_of_keyword line_number = function
  | "AND" -> Netlist.And2
  | "OR" -> Netlist.Or2
  | "NAND" -> Netlist.Nand2
  | "NOR" -> Netlist.Nor2
  | "XOR" -> Netlist.Xor2
  | "XNOR" -> Netlist.Xnor2
  | "NOT" -> Netlist.Not
  | "BUF" -> Netlist.Buf
  | "DFF" -> Netlist.Dff
  | keyword -> parse_error line_number (Printf.sprintf "unknown gate %S" keyword)

let node_id line_number token =
  let token = String.trim token in
  if String.length token < 2 || token.[0] <> 'n' then
    parse_error line_number (Printf.sprintf "expected node reference, got %S" token)
  else begin
    match int_of_string_opt (String.sub token 1 (String.length token - 1)) with
    | Some id -> id
    | None -> parse_error line_number (Printf.sprintf "bad node reference %S" token)
  end

(* The builder assigns dense ids in creation order; the format stores nodes
   in id order, so re-creating them in file order reproduces the ids.  A
   translation table guards against files with gaps anyway. *)
let of_string text =
  let b = Netlist.Builder.create () in
  let table = Hashtbl.create 256 in
  let resolve line_number id =
    match Hashtbl.find_opt table id with
    | Some node -> node
    | None -> parse_error line_number (Printf.sprintf "node n%d used before definition" id)
  in
  let outputs = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun index raw ->
      let line_number = index + 1 in
      let line = String.trim raw in
      if String.length line = 0 || line.[0] = '#' then ()
      else if String.length line > 6 && String.sub line 0 6 = "INPUT(" then begin
        let inner = String.sub line 6 (String.length line - 7) in
        match String.split_on_char ' ' (String.trim inner) with
        | [ name; node ] ->
          let declared = node_id line_number node in
          let created = Netlist.Builder.input b name in
          Hashtbl.replace table declared created
        | _ -> parse_error line_number "INPUT expects: INPUT(name n<id>)"
      end
      else if String.length line > 7 && String.sub line 0 7 = "OUTPUT(" then begin
        let inner = String.sub line 7 (String.length line - 8) in
        match String.split_on_char ' ' (String.trim inner) with
        | name :: ids when ids <> [] ->
          let bus =
            Array.of_list
              (List.map
                 (fun token ->
                   match int_of_string_opt (String.trim token) with
                   | Some id -> id
                   | None -> parse_error line_number (Printf.sprintf "bad output id %S" token))
                 ids)
          in
          outputs := (name, bus) :: !outputs
        | _ -> parse_error line_number "OUTPUT expects: OUTPUT(name id...)"
      end
      else begin
        match String.index_opt line '=' with
        | None -> parse_error line_number "expected a definition"
        | Some eq ->
          let lhs = node_id line_number (String.sub line 0 eq) in
          let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
          let created =
            if String.equal rhs "CONST0" then Netlist.Builder.const b false
            else if String.equal rhs "CONST1" then Netlist.Builder.const b true
            else begin
              match String.index_opt rhs '(' with
              | None -> parse_error line_number "expected gate(args)"
              | Some paren ->
                if rhs.[String.length rhs - 1] <> ')' then
                  parse_error line_number "missing closing parenthesis";
                let keyword = String.sub rhs 0 paren in
                let inner = String.sub rhs (paren + 1) (String.length rhs - paren - 2) in
                let args =
                  List.map (fun tok -> resolve line_number (node_id line_number tok))
                    (String.split_on_char ',' inner)
                in
                let kind = kind_of_keyword line_number keyword in
                (match (kind, args) with
                | Netlist.Not, [ a ] -> Netlist.Builder.not_ b a
                | Netlist.Buf, [ a ] -> Netlist.Builder.buf b a
                | Netlist.Dff, [ d ] -> Netlist.Builder.dff b d
                | (Netlist.And2 | Netlist.Or2 | Netlist.Nand2 | Netlist.Nor2
                  | Netlist.Xor2 | Netlist.Xnor2), [ a; c ] ->
                  Netlist.Builder.gate2 b kind a c
                | _ -> parse_error line_number "wrong arity")
            end
          in
          Hashtbl.replace table lhs created
      end)
    lines;
  List.iter
    (fun (name, declared_bus) ->
      let bus = Array.map (fun id -> resolve 0 id) declared_bus in
      Netlist.Builder.output b name bus)
    (List.rev !outputs);
  Netlist.freeze b

let input channel = of_string (In_channel.input_all channel)

let save file t = Out_channel.with_open_text file (fun channel -> output channel t)
let load file = In_channel.with_open_text file input
