(** Gate-level FIR filter datapath (transposed direct form).

    This is the "digital filter" of the paper's experimental path: each tap
    multiplies the current input by a fixed quantized coefficient through a
    CSD shift-add network, and a register chain accumulates the delayed
    partial sums, so [y(n) = sum_k c_k x(n-k)] with no pipeline latency.

    The structure exposes the input bus name ["x"] and output bus name
    ["y"]; the output is full accumulator width so that the integer netlist
    response matches {!response} (the behavioural golden model) exactly. *)

type role = Multiplier | Register | Adder

type architecture =
  | Transposed  (** Register chain carries partial sums (default). *)
  | Direct      (** Input delay line feeding a balanced adder tree. *)

type region = {
  tap : int;
  role : role;
  first_node : Netlist.node;
  last_node : Netlist.node;   (** Inclusive. *)
}

type t = {
  circuit : Netlist.t;
  coeffs : int array;        (** Quantized coefficients as driven. *)
  width_in : int;
  width_acc : int;
  scale : float;             (** [coefficient = code * scale]. *)
  regions : region list;     (** Structural map for fault-site selection. *)
}

val input_bus_name : string
val output_bus_name : string

val region_of_node : t -> Netlist.node -> region option
(** Which datapath element a node belongs to ([None] for I/O wiring). *)

val fault_site : t -> tap:int -> role:role -> Fault.t
(** A representative stuck-at fault inside the requested element (the
    middle node of its region, stuck-at-1).  Raises [Not_found] when the
    element does not exist (e.g. [Multiplier] of a zero coefficient). *)

val role_name : role -> string

val create :
  coeffs:int array -> width_in:int -> ?scale:float -> ?architecture:architecture ->
  unit -> t
(** Build the datapath.  Requires at least one tap, [width_in >= 2], and
    every coefficient nonzero-width representable.  [scale] defaults to 1,
    [architecture] to {!Transposed}.  Both architectures compute the same
    [y(n) = sum_k c_k x(n-k)] with zero latency, so {!response} is the
    golden model for either. *)

val input_bus : t -> Netlist.node array
val output_bus : t -> Netlist.node array

val drive : t -> Logic_sim.t -> int -> unit
(** Drive one input sample (clamped to the representable signed range). *)

val response : t -> int array -> int array
(** Behavioural integer golden model: exact expected netlist output. *)

val quantize_input : t -> full_scale:float -> float -> int
(** Map an analog sample in [\[-full_scale, full_scale\]] to the input code
    range (round-to-nearest, saturating) — the ADC-to-filter interface. *)

val output_to_float : t -> full_scale:float -> int -> float
(** Inverse mapping for the output, undoing input scaling and coefficient
    scale so a unity-DC-gain filter returns values in input units. *)
