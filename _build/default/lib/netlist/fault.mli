(** Single-stuck-at fault model.

    Faults live on node outputs (net stems).  The universe enumerates
    stuck-at-0 and stuck-at-1 on every non-constant node; {!collapse}
    removes the classical equivalences that single-input gates induce
    (a stuck fault at the output of a BUF, NOT or DFF whose driver has no
    other fanout is indistinguishable from the corresponding fault on the
    driver), so coverage percentages are reported over collapsed classes as
    a structural fault simulator would. *)

type t = { node : Netlist.node; stuck : bool }

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val universe : Netlist.t -> t array
(** Both polarities on every [Input], gate and [Dff] node (constants are
    excluded: a stuck constant is either redundant or a different circuit). *)

val collapse : Netlist.t -> t array -> t array
(** Keep one representative per equivalence class (driver-side). *)

val representative : Netlist.t -> t -> t
(** Map a fault to its collapsed class representative. *)
