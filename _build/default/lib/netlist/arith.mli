(** Two's-complement datapath generators.

    Buses are node arrays, LSB first.  All generators keep the invariant
    that the bus width is large enough for the value range they produce, so
    ripple adders may discard their final carry without overflow. *)

type bus = Netlist.node array

val const_bus : Netlist.Builder.t -> width:int -> int -> bus
(** Two's-complement constant.  Requires the value to fit in [width] bits. *)

val sign_extend : Netlist.Builder.t -> bus -> width:int -> bus
(** Widen by replicating the sign bit (through buffers so the extension is
    a real circuit net).  Requires [width >=] current width. *)

val full_adder : Netlist.Builder.t -> Netlist.node -> Netlist.node -> Netlist.node ->
  Netlist.node * Netlist.node
(** [full_adder b x y cin] is [(sum, carry_out)]: 2 XOR, 2 AND, 1 OR. *)

val ripple_add : Netlist.Builder.t -> bus -> bus -> cin:Netlist.node -> bus
(** Equal-width addition, carry-out discarded (mod 2^width). *)

val add_signed : Netlist.Builder.t -> bus -> bus -> width:int -> bus
(** Sign-extend both operands to [width] and add.  Requires [width] to be at
    least one more than the wider operand for overflow freedom. *)

val sub_signed : Netlist.Builder.t -> bus -> bus -> width:int -> bus
(** [x - y] via the complement-and-carry identity. *)

val negate : Netlist.Builder.t -> bus -> width:int -> bus
(** Two's-complement negation into [width] bits. *)

val shift_left : Netlist.Builder.t -> bus -> by:int -> bus
(** Append [by] constant-zero LSBs (pure wiring plus shared constant). *)

val csd_digits : int -> (int * int) list
(** Canonical-signed-digit decomposition: [(weight, digit)] pairs with
    [digit = ±1], no two adjacent weights, summing to the argument.
    [csd_digits 0 = \[\]]. *)

val scale_const : Netlist.Builder.t -> bus -> coeff:int -> width:int -> bus
(** Multiply a signed bus by a constant using a CSD shift-add network,
    producing a [width]-bit result.  Requires [width] wide enough for
    [coeff * x] over the full input range. *)

val multiply_signed : Netlist.Builder.t -> bus -> bus -> bus
(** General two's-complement array multiplier (shift-add rows with a
    subtracted sign row — Baugh–Wooley style).  Result width is the sum of
    the operand widths, which holds every product exactly. *)

val register_bus : Netlist.Builder.t -> bus -> bus
(** One DFF per wire. *)

val width_for_product : input_width:int -> coeff:int -> int
(** Bits needed to hold [coeff * x] for any [input_width]-bit signed [x]. *)

val width_for_sum : widths:int list -> int
(** Bits needed to hold the sum of values of the given signed widths. *)
