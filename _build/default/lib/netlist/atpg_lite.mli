(** Random-pattern fault grading.

    Not a full deterministic ATPG, but the standard baseline it is judged
    against: drive the sequential circuit with (optionally weighted) random
    input vectors, fault-simulate with early dropping, and report which
    stuck-at faults toggled the outputs.  Two uses in this project:

    - bound the {e activatable} fault set of a filter, separating genuine
      structural redundancy from stimulus weakness;
    - compare the paper's functional sine stimuli against the classic
      random-pattern DFT approach the paper argues they can replace. *)

type config = {
  patterns : int;              (** Cycles of random stimulus. *)
  seed : int;
  weights : float array option;
  (** Per-input probability of driving 1 (default 0.5 everywhere);
      length must equal the circuit's input count when given. *)
}

val default_config : config
(** 1024 patterns, seed 7, unweighted. *)

type result = {
  total : int;
  detected : int;
  coverage : float;
  detected_flags : bool array;   (** Indexed like the fault array given. *)
  patterns_used : int;
}

val grade : Netlist.t -> output:string -> faults:Fault.t array -> config -> result
(** Random-pattern fault grading against a named output bus; a fault is
    detected when any output cycle differs from the fault-free machine. *)

val grade_until :
  Netlist.t ->
  output:string ->
  faults:Fault.t array ->
  config ->
  target_coverage:float ->
  max_patterns:int ->
  result
(** Keep doubling the pattern count until the target coverage is reached
    or the budget runs out — reports the final grading. *)

val union_coverage : bool array list -> int
(** Number of faults detected by at least one of several gradings. *)
