type run = {
  faults : Fault.t array;
  good_stream : int array;
  fault_streams : int array array;
}

let faults_per_batch = Logic_sim.lanes - 1

let batches faults =
  let total = Array.length faults in
  let count = (total + faults_per_batch - 1) / faults_per_batch in
  List.init count (fun b ->
      let lo = b * faults_per_batch in
      Array.sub faults lo (min faults_per_batch (total - lo)))

let prepare sim batch =
  Logic_sim.clear_faults sim;
  Logic_sim.reset sim;
  Array.iteri
    (fun lane (f : Fault.t) ->
      Logic_sim.inject sim ~node:f.Fault.node ~lane:(lane + 1) ~stuck:f.Fault.stuck)
    batch

let run_fold circuit ~output ~drive ~samples ~faults ~on_fault =
  let bus = Netlist.find_output circuit output in
  let sim = Logic_sim.create circuit in
  let good_stream = Array.make samples 0 in
  let batch_streams =
    Array.init faults_per_batch (fun _ -> Array.make samples 0)
  in
  let lane_values = Array.make Logic_sim.lanes 0 in
  let batch_start = ref 0 in
  List.iter
    (fun batch ->
      prepare sim batch;
      for cycle = 0 to samples - 1 do
        drive sim cycle;
        Logic_sim.eval sim;
        Logic_sim.read_bus_lanes sim bus lane_values;
        good_stream.(cycle) <- lane_values.(0);
        for lane = 0 to Array.length batch - 1 do
          batch_streams.(lane).(cycle) <- lane_values.(lane + 1)
        done;
        Logic_sim.tick sim
      done;
      Array.iteri
        (fun lane fault -> on_fault (!batch_start + lane) fault batch_streams.(lane))
        batch;
      batch_start := !batch_start + Array.length batch)
    (batches faults);
  good_stream

let run circuit ~output ~drive ~samples ~faults =
  let fault_streams = Array.init (Array.length faults) (fun _ -> [||]) in
  let on_fault index _fault stream = fault_streams.(index) <- Array.copy stream in
  let good_stream = run_fold circuit ~output ~drive ~samples ~faults ~on_fault in
  { faults; good_stream; fault_streams }

let detect_exact circuit ~output ~drive ~samples ~faults =
  let bus = Netlist.find_output circuit output in
  let sim = Logic_sim.create circuit in
  let detected = Array.make (Array.length faults) false in
  let lane_values = Array.make Logic_sim.lanes 0 in
  let batch_start = ref 0 in
  List.iter
    (fun batch ->
      prepare sim batch;
      let live = ref (Array.length batch) in
      let cycle = ref 0 in
      while !cycle < samples && !live > 0 do
        drive sim !cycle;
        Logic_sim.eval sim;
        Logic_sim.read_bus_lanes sim bus lane_values;
        let good = lane_values.(0) in
        for lane = 0 to Array.length batch - 1 do
          if (not detected.(!batch_start + lane)) && lane_values.(lane + 1) <> good then begin
            detected.(!batch_start + lane) <- true;
            decr live
          end
        done;
        Logic_sim.tick sim;
        incr cycle
      done;
      batch_start := !batch_start + Array.length batch)
    (batches faults);
  detected
