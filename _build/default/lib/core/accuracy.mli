(** Measurement-error budgets.

    When a module-level measurement is converted to the system level, every
    nominal gain assumed in the de-embedding formula contributes its
    tolerance to the error of the computed parameter (§4.2, Fig. 4).  A
    budget names those contributions so that the adaptive strategy — replace
    a nominal term with a previously measured composite — is visible as the
    removal of a contribution. *)

type contribution = { source : string; err : float }

type t = {
  contributions : contribution list;
  instrument_err : float;
  (** Residual error of the primary-output reading itself (FFT resolution,
      tester accuracy); always present. *)
}

val create : ?instrument_err:float -> contribution list -> t
(** Default instrument error 0.1 (same unit as the contributions). *)

val worst_case : t -> float
(** Sum of absolute contributions (intervals add linearly). *)

val rss : t -> float
(** Root-sum-square — the expected (1-sigma-ish) error when contributions
    are independent. *)

val remove : t -> source:string -> t
(** Drop a contribution (adaptive substitution); unknown sources are a
    no-op. *)

val add : t -> contribution -> t
val pp : Format.formatter -> t -> unit
