(** Fault-coverage loss and yield loss under measurement error
    (paper §3 Fig. 2, §4.2 Fig. 5, Table 2).

    A parameter is {e good} when it satisfies its spec bound and {e faulty}
    otherwise (soft faults: slight deviations).  The test accepts when the
    {e measured} value — true value plus measurement error — satisfies the
    (possibly shifted) threshold.  Then

    - FCL (fault-coverage loss) = P(accept | faulty): bad parts that escape;
    - YL (yield loss)           = P(reject | good): good parts discarded.

    Tightening the threshold by the worst-case error drives FCL to zero at
    the cost of YL, and vice versa — Table 2's three columns. *)

module Distribution = Msoc_stat.Distribution

type losses = { fcl : float; yl : float }

type error_model =
  | Uniform_err of float   (** Error uniform in [±err] — worst-case style. *)
  | Normal_err of float    (** Error normal with [sigma = err / 3]. *)

val analytic :
  population:Distribution.t ->
  bound:Spec.bound ->
  error:error_model ->
  threshold_shift:float ->
  losses
(** Numerical integration of the two conditional probabilities.
    [threshold_shift] moves every threshold {e into} the pass region when
    positive (tightening: FCL falls, YL rises) and outward when negative. *)

val monte_carlo :
  trials:int ->
  rng:Msoc_util.Prng.t ->
  sample_true:(Msoc_util.Prng.t -> float) ->
  measure:(Msoc_util.Prng.t -> float -> float) ->
  bound:Spec.bound ->
  threshold_shift:float ->
  losses * int * int
(** Empirical losses plus the (faulty, good) population counts.  [measure]
    maps the true value to the measured one — e.g. by sampling the
    de-embedding gains of a propagated measurement. *)

val threshold_rows :
  population:Distribution.t ->
  bound:Spec.bound ->
  err:float ->
  error:error_model ->
  (string * losses) list
(** The three Table 2 columns: [Thr = Tol], [Thr = Tol - Err] (loosened:
    YL -> 0) and [Thr = Tol + Err] (tightened: FCL -> 0), matching the
    paper's labelling for lower-bound specs. *)

val fcl_yl_tradeoff :
  population:Distribution.t ->
  bound:Spec.bound ->
  error:error_model ->
  shifts:float array ->
  (float * losses) array
(** Sweep of threshold shifts (paper Fig. 5's trade-off curve). *)

val defective_population : nominal:float -> tol:float -> Distribution.t
(** Manufactured-population model used by the experiments: normal centred
    at the nominal with [sigma = tol], so a meaningful share of parts falls
    outside the spec (soft-faulty). *)
