(** DFT fall-back advisor.

    "If test synthesis results in unacceptable fault coverage and yield
    loss, a DFT technique needs to be utilized to decrease the amount of
    error" (§4.2).  For each propagated measurement whose predicted losses
    exceed the caller's limits, this module quantifies what a test point at
    the measured block's boundary would buy: direct access removes every
    de-embedding contribution from the budget, leaving the instrument
    error, and the losses are re-evaluated with the shrunken error. *)

module Path = Msoc_analog.Path

type recommendation = {
  measurement : Propagate.t;
  losses_without : Coverage.losses;   (** At [Thr = Tol], via signal paths. *)
  losses_with : Coverage.losses;      (** Same, with a test point inserted. *)
  budget_with : Accuracy.t;
  fcl_reduction : float;              (** [fcl_without - fcl_with]. *)
  yl_reduction : float;
}

val evaluate : Path.t -> Propagate.t -> recommendation
(** What direct access would buy for one measurement. *)

val recommend :
  ?strategy:Propagate.strategy ->
  Path.t ->
  max_fcl:float ->
  max_yl:float ->
  recommendation list
(** Recommendations for every measurement whose losses exceed both limits,
    sorted by decreasing fault-coverage-loss reduction — the insertion
    order that buys the most testability first. *)
