type contribution = { source : string; err : float }

type t = {
  contributions : contribution list;
  instrument_err : float;
}

let create ?(instrument_err = 0.1) contributions = { contributions; instrument_err }

let worst_case t =
  List.fold_left (fun acc c -> acc +. Float.abs c.err) t.instrument_err t.contributions

let rss t =
  let sum_sq =
    List.fold_left
      (fun acc c -> acc +. (c.err *. c.err))
      (t.instrument_err *. t.instrument_err)
      t.contributions
  in
  sqrt sum_sq

let remove t ~source =
  { t with contributions = List.filter (fun c -> not (String.equal c.source source)) t.contributions }

let add t c = { t with contributions = c :: t.contributions }

let pp ppf t =
  Format.fprintf ppf "@[<v>error budget (worst %.3g, rss %.3g):" (worst_case t) (rss t);
  List.iter (fun c -> Format.fprintf ppf "@,  %-24s ±%.3g" c.source c.err) t.contributions;
  Format.fprintf ppf "@,  %-24s ±%.3g@]" "instrument" t.instrument_err
