(** Translation by composition (§4.2).

    Parameters that partition a system-level parameter (gain, noise figure,
    dynamic range) are measured once as a composite at the primary I/O.
    Because the composite is observed directly, its measurement accuracy is
    essentially the instrument's — the per-block tolerances no longer enter
    the reading.  The price is masking: individual errors can cancel at the
    measurement point, which is why composition must be accompanied by
    boundary-condition checks at the amplitude extremes (paper Fig. 3). *)

module Path = Msoc_analog.Path

type t = {
  name : string;
  covers : (Spec.block * Spec.kind) list;
  nominal : float;
  tolerance : float;       (** Accumulated tolerance of the composite. *)
  accuracy : Accuracy.t;   (** Accuracy of the composite measurement. *)
  unit_label : string;
}

val path_gain : Path.t -> t
(** Amp + Mixer + LPF pass-band gain, measured mid-range. *)

val noise_figure : Path.t -> t
(** Friis cascade of the four noisy blocks; tolerance from corner
    evaluation (all-NF-high/all-gain-low vs the opposite). *)

val dynamic_range : Path.t -> t
(** Usable input range: compression ceiling over noise floor. *)

val friis_nf_db : nf_db:float array -> gain_db:float array -> float
(** Cascade noise figure; [gain_db] has one fewer element than [nf_db]
    (no gain after the last stage matters). *)

type check_kind =
  | Saturation   (** High-amplitude: SNR must survive near the ceiling. *)
  | Signal_loss  (** Low-amplitude: the tone must stay detectable. *)
  | Mid_gain     (** The composite-gain measurement level itself. *)

type boundary_check = {
  kind : check_kind;
  description : string;
  stimulus_dbm : float;     (** Input level for the check. *)
  min_snr_db : float;       (** Pass criterion at the primary output. *)
}

val boundary_checks : Path.t -> test_level_dbm:float -> boundary_check list
(** The max- and min-amplitude SNR checks of Fig. 3: a saturation that
    composition masks fails the high-amplitude check; a gain deficit that
    composition masks fails the low-amplitude (signal-loss) check. *)

val ceiling_input_dbm : Path.t -> float
(** Input level at which the first block of the nominal path compresses. *)

val floor_input_dbm : Path.t -> float
(** Input-referred system noise floor (thermal cascade or ADC quantization,
    whichever dominates). *)

type saturation_report = {
  block : string;
  drive_dbm : float;        (** Worst-case signal level at the block input. *)
  limit_dbm : float;        (** The block's hard-saturation input level. *)
  headroom_db : float;
}

val saturation_analysis : Path.t -> input_dbm:float -> saturation_report list
(** Static headroom analysis at an input level, using worst-case (high)
    gains for everything upstream of each block. *)
