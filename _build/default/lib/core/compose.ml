module Units = Msoc_util.Units
module Param = Msoc_analog.Param
module Path = Msoc_analog.Path
module Amplifier = Msoc_analog.Amplifier
module Mixer = Msoc_analog.Mixer
module Lpf = Msoc_analog.Lpf
module Adc = Msoc_analog.Adc
module Nonlin = Msoc_analog.Nonlin
module Context = Msoc_analog.Context

type t = {
  name : string;
  covers : (Spec.block * Spec.kind) list;
  nominal : float;
  tolerance : float;
  accuracy : Accuracy.t;
  unit_label : string;
}

let path_gain (path : Path.t) =
  let interval = Path.path_gain_interval_db path in
  { name = "path gain";
    covers = [ (Spec.Amp, Spec.Gain); (Spec.Mixer, Spec.Gain); (Spec.Lpf, Spec.Passband_gain) ];
    nominal = Msoc_util.Interval.mid interval;
    tolerance = Msoc_util.Interval.err interval;
    accuracy = Accuracy.create [];
    unit_label = "dB" }

let friis_nf_db ~nf_db ~gain_db =
  assert (Array.length nf_db = Array.length gain_db + 1);
  let factor = ref (Units.power_ratio_of_db nf_db.(0)) in
  let cumulative_gain = ref 1.0 in
  for i = 1 to Array.length nf_db - 1 do
    cumulative_gain := !cumulative_gain *. Units.power_ratio_of_db gain_db.(i - 1);
    factor := !factor +. ((Units.power_ratio_of_db nf_db.(i) -. 1.0) /. !cumulative_gain)
  done;
  Units.db_of_power_ratio !factor

let cascade_params (path : Path.t) =
  let nf p = p.Param.nominal and tol p = p.Param.tol in
  let amp = path.Path.amp and mixer = path.Path.mixer in
  let lpf = path.Path.lpf and adc = path.Path.adc in
  ( [| amp.Amplifier.nf_db; mixer.Mixer.nf_db; lpf.Lpf.nf_db; adc.Adc.nf_db |],
    [| amp.Amplifier.gain_db; mixer.Mixer.gain_db; lpf.Lpf.gain_db |],
    nf, tol )

let noise_figure (path : Path.t) =
  let nfs, gains, nominal_of, tol_of = cascade_params path in
  let nominal =
    friis_nf_db ~nf_db:(Array.map nominal_of nfs) ~gain_db:(Array.map nominal_of gains)
  in
  (* Friis NF is increasing in each stage NF and decreasing in each gain, so
     the two extreme corners bound the composite. *)
  let hi =
    friis_nf_db
      ~nf_db:(Array.map (fun p -> nominal_of p +. tol_of p) nfs)
      ~gain_db:(Array.map (fun p -> nominal_of p -. tol_of p) gains)
  in
  let lo =
    friis_nf_db
      ~nf_db:(Array.map (fun p -> nominal_of p -. tol_of p) nfs)
      ~gain_db:(Array.map (fun p -> nominal_of p +. tol_of p) gains)
  in
  { name = "cascade noise figure";
    covers =
      [ (Spec.Mixer, Spec.Noise_figure); (Spec.Adc, Spec.Noise_figure) ];
    nominal;
    tolerance = Float.max (hi -. nominal) (nominal -. lo);
    accuracy = Accuracy.create ~instrument_err:0.5 [];
    unit_label = "dB" }

let noise_floor_input_dbm (path : Path.t) =
  let nfs, gains, nominal_of, _ = cascade_params path in
  let nf =
    friis_nf_db ~nf_db:(Array.map nominal_of nfs) ~gain_db:(Array.map nominal_of gains)
  in
  Context.thermal_noise_dbm path.Path.ctx +. nf

let dynamic_range (path : Path.t) =
  (* Ceiling: the mixer compression referred to the primary input; floor:
     the cascade noise floor referred to the primary input. *)
  let amp_gain = path.Path.amp.Amplifier.gain_db in
  let p1db = path.Path.mixer.Mixer.p1db_dbm in
  let ceiling = p1db.Param.nominal -. amp_gain.Param.nominal in
  let floor = noise_floor_input_dbm path in
  let tolerance =
    p1db.Param.tol +. amp_gain.Param.tol +. 1.0 (* NF corner contribution, conservative *)
  in
  { name = "dynamic range";
    covers = [ (Spec.Lpf, Spec.Dynamic_range); (Spec.Adc, Spec.Dynamic_range) ];
    nominal = ceiling -. floor;
    tolerance;
    accuracy = Accuracy.create ~instrument_err:0.5 [];
    unit_label = "dB" }

type check_kind = Saturation | Signal_loss | Mid_gain

type boundary_check = {
  kind : check_kind;
  description : string;
  stimulus_dbm : float;
  min_snr_db : float;
}

(* Input-referred compression ceiling: the first block whose limit is hit as
   the stimulus rises.  With the default receiver the ADC full scale binds,
   which is why an out-of-tolerance amp gain masked in the composite shows
   up as clipping at the high-amplitude check. *)
let ceiling_input_dbm (path : Path.t) =
  let path_gain = Path.nominal_path_gain_db path in
  let amp_gain = path.Path.amp.Amplifier.gain_db.Param.nominal in
  let adc_ceiling = Units.dbm_of_vpeak path.Path.adc.Adc.full_scale_v -. path_gain in
  let mixer_ceiling = path.Path.mixer.Mixer.p1db_dbm.Param.nominal -. amp_gain in
  (* a cubic's hard saturation sits ~3.6 dB above its 1 dB compression;
     for the amp (no explicit P1dB) IIP3 - 9.6 locates compression *)
  let amp_ceiling = path.Path.amp.Amplifier.iip3_dbm.Param.nominal -. 9.6 in
  Float.min adc_ceiling (Float.min mixer_ceiling amp_ceiling)

(* Input-referred system noise floor: cascade thermal noise or the ADC
   quantization floor, whichever dominates. *)
let floor_input_dbm (path : Path.t) =
  let thermal = noise_floor_input_dbm path in
  let quant =
    Units.dbm_of_vpeak path.Path.adc.Adc.full_scale_v
    -. Adc.ideal_snr_db path.Path.adc -. Path.nominal_path_gain_db path
  in
  Float.max thermal quant

let boundary_checks (path : Path.t) ~test_level_dbm =
  [ { kind = Saturation;
      description = "max-amplitude saturation check (Fig. 3, high side)";
      stimulus_dbm = ceiling_input_dbm path -. 3.0;
      min_snr_db = 15.0 };
    { kind = Signal_loss;
      description = "min-amplitude signal-loss check (Fig. 3, low side)";
      stimulus_dbm = floor_input_dbm path +. 12.0;
      min_snr_db = 6.0 };
    { kind = Mid_gain;
      description = "mid-range composite gain measurement level";
      stimulus_dbm = test_level_dbm;
      min_snr_db = 40.0 } ]

type saturation_report = {
  block : string;
  drive_dbm : float;
  limit_dbm : float;
  headroom_db : float;
}

let saturation_analysis (path : Path.t) ~input_dbm =
  let ctx = path.Path.ctx in
  let amp_values = Amplifier.nominal_values path.Path.amp in
  let amp_inst = Amplifier.instance ctx amp_values in
  let mixer_inst =
    Mixer.instance ctx (Mixer.nominal_values path.Path.mixer)
      ~lo_drive_dbm:path.Path.lo.Msoc_analog.Local_osc.drive_dbm
  in
  let amp_gain_hi =
    path.Path.amp.Amplifier.gain_db.Param.nominal +. path.Path.amp.Amplifier.gain_db.Param.tol
  in
  let amp_sat_dbm = Units.dbm_of_vpeak (Amplifier.saturation_input_v amp_inst) in
  let mixer_sat_dbm = Units.dbm_of_vpeak (Mixer.saturation_input_v mixer_inst) in
  let adc_limit_dbm = Units.dbm_of_vpeak path.Path.adc.Adc.full_scale_v in
  let path_gain_hi =
    amp_gain_hi
    +. path.Path.mixer.Mixer.gain_db.Param.nominal +. path.Path.mixer.Mixer.gain_db.Param.tol
    +. path.Path.lpf.Lpf.gain_db.Param.nominal +. path.Path.lpf.Lpf.gain_db.Param.tol
  in
  let report block drive limit =
    { block; drive_dbm = drive; limit_dbm = limit; headroom_db = limit -. drive }
  in
  [ report "amp" input_dbm amp_sat_dbm;
    report "mixer" (input_dbm +. amp_gain_hi) mixer_sat_dbm;
    report "adc" (input_dbm +. path_gain_hi) adc_limit_dbm ]
