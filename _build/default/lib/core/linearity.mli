(** Code-density (sine histogram) linearity test for ADCs.

    Table 1 lists INL and DNL among the ADC parameters to test.  The
    standard production procedure is the histogram method: capture many
    periods of a sine that overdrives the range slightly, compare each
    code's hit count with the arcsine density the sine should produce, and
    read DNL (per-code step error) and INL (its running sum) off the
    ratio.  Works on codes from any capture source — the ADC directly or
    the primary output of the path. *)

type result = {
  first_code : int;            (** Code of [dnl.(0)] / [inl.(0)]. *)
  dnl : float array;           (** Per-code DNL, LSB. *)
  inl : float array;           (** Per-code INL (cumulative DNL), LSB. *)
  max_abs_dnl : float;
  max_abs_inl : float;
  samples_used : int;
}

val sine_histogram : codes:int array -> bits:int -> result
(** Requires at least [4 * 2^bits] samples and a capture whose code range
    spans at least half the converter's range; analyses the interior of
    the covered range (5% guard bands at both ends, where the arcsine
    density diverges).  Raises [Invalid_argument] otherwise. *)

val expected_bin_probability :
  amplitude:float -> offset:float -> lo:float -> hi:float -> float
(** Probability that an ideal sine of the given amplitude and offset falls
    in the code interval [\[lo, hi)] (arcsine law); exposed for tests. *)
