(** Specification back-propagation: system requirements to block bounds.

    §4.2 classifies block parameters by origin; the {e partitioned} ones
    ("the required gain is partitioned as gains of basic blocks in a
    signal path") come from exactly this computation, and the related work
    the paper builds on (Huang, Pan & Cheng's specification
    back-propagation) derives block pass/fail conditions from system-level
    conditions.  This module allocates a receiver's system-level
    requirements down to the blocks and verifies that the allocation,
    composed back through the cascade formulas, meets the requirement with
    margin. *)

module Path = Msoc_analog.Path

type requirements = {
  gain_db : float * float;        (** Acceptable system gain range. *)
  nf_max_db : float;              (** System noise figure ceiling. *)
  iip3_min_dbm : float;           (** System third-order intercept floor. *)
  channel_cutoff_hz : float * float; (** Acceptable channel corner range. *)
}

val default_requirements : requirements
(** Matches the default receiver: gain 26 ± 2.8 dB, NF <= 6 dB,
    IIP3 >= -28 dBm, corner 200 kHz ± 12 kHz. *)

type allocation = {
  block : Spec.block;
  kind : Spec.kind;
  bound : Spec.bound;
  rationale : string;
}

val allocate : requirements -> Path.t -> allocation list
(** Partition each system requirement over the blocks of the path in
    proportion to their nominal contributions: gain bounds are split by
    tolerance share; the NF ceiling is turned into per-block NF bounds
    through the Friis sensitivity of the cascade NF to each stage; the
    IIP3 floor maps to per-block intercept floors through the cascade
    intercept formula. *)

val cascade_iip3_dbm : gains_db:float array -> iip3_dbm:float array -> float
(** Input-referred cascade intercept:
    [1/ip3 = sum_k (prod_{j<k} g_j) / ip3_k] in linear power terms.
    [gains_db] has the same length as [iip3_dbm]; stage [k]'s intercept is
    divided by the gain {e preceding} it. *)

type verification = {
  requirement : string;
  required : string;
  achieved_worst_case : string;
  satisfied : bool;
}

val verify : requirements -> Path.t -> allocation list -> verification list
(** Compose the allocated worst-case corners back through the cascade
    formulas and check each system requirement. *)
