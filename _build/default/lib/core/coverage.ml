module Distribution = Msoc_stat.Distribution
module Quadrature = Msoc_stat.Quadrature
module Prng = Msoc_util.Prng

type losses = { fcl : float; yl : float }

type error_model =
  | Uniform_err of float
  | Normal_err of float

(* P(x + e satisfies the shifted bound), as a function of the true x. *)
let accept_probability ~bound ~error ~threshold_shift x =
  let prob_ge threshold =
    (* P(x + e >= threshold) *)
    match error with
    | Uniform_err err ->
      if err <= 0.0 then (if x >= threshold then 1.0 else 0.0)
      else Msoc_util.Floatx.clamp ~lo:0.0 ~hi:1.0 ((x +. err -. threshold) /. (2.0 *. err))
    | Normal_err err ->
      if err <= 0.0 then (if x >= threshold then 1.0 else 0.0)
      else begin
        let sigma = err /. 3.0 in
        1.0 -. Distribution.cdf (Distribution.normal ~mean:0.0 ~sigma) (threshold -. x)
      end
  in
  let prob_le threshold = 1.0 -. prob_ge threshold in
  match bound with
  | Spec.At_least m -> prob_ge (m +. threshold_shift)
  | Spec.At_most m -> prob_le (m -. threshold_shift)
  | Spec.Within { lo; hi } ->
    let lo' = lo +. threshold_shift and hi' = hi -. threshold_shift in
    if lo' >= hi' then 0.0 else Float.max 0.0 (prob_le hi' -. prob_le lo')

let truly_good ~bound x = Spec.passes bound x

let analytic ~population ~bound ~error ~threshold_shift =
  let mean = Distribution.mean population and sigma = Distribution.stddev population in
  let lo = mean -. (10.0 *. sigma) and hi = mean +. (10.0 *. sigma) in
  (* Split the integration at the spec boundaries so the discontinuities of
     the good/faulty indicator do not degrade Simpson accuracy. *)
  let err_magnitude = match error with Uniform_err e | Normal_err e -> Float.abs e in
  let kinks m = [ m; m +. threshold_shift; m +. threshold_shift -. err_magnitude;
                  m +. threshold_shift +. err_magnitude; m -. threshold_shift;
                  m -. threshold_shift -. err_magnitude; m -. threshold_shift +. err_magnitude ]
  in
  let boundaries =
    match bound with
    | Spec.At_least m -> kinks m
    | Spec.At_most m -> kinks m
    | Spec.Within { lo = a; hi = b } -> kinks a @ kinks b
  in
  let cuts =
    List.sort_uniq compare (lo :: hi :: List.filter (fun b -> b > lo && b < hi) boundaries)
  in
  let integrate f =
    let rec over acc = function
      | a :: (b :: _ as rest) ->
        over (acc +. Quadrature.simpson ~f ~lo:a ~hi:b ~n:800) rest
      | [ _ ] | [] -> acc
    in
    over 0.0 cuts
  in
  let pdf = Distribution.pdf population in
  let accept = accept_probability ~bound ~error ~threshold_shift in
  let p_good = integrate (fun x -> if truly_good ~bound x then pdf x else 0.0) in
  let p_faulty = 1.0 -. p_good in
  let escape =
    integrate (fun x -> if truly_good ~bound x then 0.0 else pdf x *. accept x)
  in
  let rejected_good =
    integrate (fun x -> if truly_good ~bound x then pdf x *. (1.0 -. accept x) else 0.0)
  in
  let clamp01 = Msoc_util.Floatx.clamp ~lo:0.0 ~hi:1.0 in
  { fcl = (if p_faulty <= 1e-12 then 0.0 else clamp01 (escape /. p_faulty));
    yl = (if p_good <= 1e-12 then 0.0 else clamp01 (rejected_good /. p_good)) }

let shifted_bound ~bound ~threshold_shift =
  match bound with
  | Spec.At_least m -> Spec.At_least (m +. threshold_shift)
  | Spec.At_most m -> Spec.At_most (m -. threshold_shift)
  | Spec.Within { lo; hi } -> Spec.Within { lo = lo +. threshold_shift; hi = hi -. threshold_shift }

let monte_carlo ~trials ~rng ~sample_true ~measure ~bound ~threshold_shift =
  assert (trials > 0);
  let accept_bound = shifted_bound ~bound ~threshold_shift in
  let faulty = ref 0 and good = ref 0 in
  let escapes = ref 0 and rejections = ref 0 in
  for _ = 1 to trials do
    let x = sample_true rng in
    let measured = measure rng x in
    let is_good = truly_good ~bound x in
    let accepted = Spec.passes accept_bound measured in
    if is_good then begin
      incr good;
      if not accepted then incr rejections
    end
    else begin
      incr faulty;
      if accepted then incr escapes
    end
  done;
  let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  ({ fcl = ratio !escapes !faulty; yl = ratio !rejections !good }, !faulty, !good)

let threshold_rows ~population ~bound ~err ~error =
  [ ("Thr = Tol", analytic ~population ~bound ~error ~threshold_shift:0.0);
    ("Thr = Tol - Err", analytic ~population ~bound ~error ~threshold_shift:err);
    ("Thr = Tol + Err", analytic ~population ~bound ~error ~threshold_shift:(-.err)) ]

let fcl_yl_tradeoff ~population ~bound ~error ~shifts =
  Array.map (fun shift -> (shift, analytic ~population ~bound ~error ~threshold_shift:shift)) shifts

let defective_population ~nominal ~tol =
  Distribution.normal ~mean:nominal ~sigma:(Float.max tol 1e-12)
