module Path = Msoc_analog.Path

type recommendation = {
  measurement : Propagate.t;
  losses_without : Coverage.losses;
  losses_with : Coverage.losses;
  budget_with : Accuracy.t;
  fcl_reduction : float;
  yl_reduction : float;
}

let losses_with_error path (measurement : Propagate.t) error =
  let spec = measurement.Propagate.spec in
  match Plan.population_of_spec path spec with
  | None -> { Coverage.fcl = 0.0; yl = 0.0 }
  | Some population ->
    Coverage.analytic ~population ~bound:spec.Spec.bound
      ~error:(Coverage.Uniform_err error) ~threshold_shift:0.0

let evaluate path (measurement : Propagate.t) =
  let budget_with =
    (* a test point at the block boundary removes every de-embedding term *)
    { measurement.Propagate.budget with Accuracy.contributions = [] }
  in
  let losses_without = losses_with_error path measurement (Propagate.err measurement) in
  let losses_with = losses_with_error path measurement (Accuracy.worst_case budget_with) in
  { measurement;
    losses_without;
    losses_with;
    budget_with;
    fcl_reduction = losses_without.Coverage.fcl -. losses_with.Coverage.fcl;
    yl_reduction = losses_without.Coverage.yl -. losses_with.Coverage.yl }

let recommend ?(strategy = Propagate.Adaptive) path ~max_fcl ~max_yl =
  let flagged =
    List.filter
      (fun m ->
        let losses = losses_with_error path m (Propagate.err m) in
        losses.Coverage.fcl > max_fcl && losses.Coverage.yl > max_yl)
      (Propagate.all_for_receiver path ~strategy)
  in
  List.sort
    (fun a b -> compare b.fcl_reduction a.fcl_reduction)
    (List.map (evaluate path) flagged)
