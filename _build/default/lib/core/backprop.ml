module Path = Msoc_analog.Path
module Param = Msoc_analog.Param
module Amplifier = Msoc_analog.Amplifier
module Mixer = Msoc_analog.Mixer
module Lpf = Msoc_analog.Lpf
module Adc = Msoc_analog.Adc
module Units = Msoc_util.Units

type requirements = {
  gain_db : float * float;
  nf_max_db : float;
  iip3_min_dbm : float;
  channel_cutoff_hz : float * float;
}

let default_requirements =
  { gain_db = (23.2, 28.8);
    nf_max_db = 6.0;
    iip3_min_dbm = -28.0;
    channel_cutoff_hz = (188e3, 212e3) }

type allocation = {
  block : Spec.block;
  kind : Spec.kind;
  bound : Spec.bound;
  rationale : string;
}

let cascade_iip3_dbm ~gains_db ~iip3_dbm =
  assert (Array.length gains_db = Array.length iip3_dbm);
  let reciprocal = ref 0.0 in
  let cumulative_gain_db = ref 0.0 in
  Array.iteri
    (fun k iip3 ->
      (* stage k's intercept referred to the system input *)
      let input_referred = iip3 -. !cumulative_gain_db in
      reciprocal := !reciprocal +. (1.0 /. Units.power_ratio_of_db input_referred);
      cumulative_gain_db := !cumulative_gain_db +. gains_db.(k))
    iip3_dbm;
  Units.db_of_power_ratio (1.0 /. !reciprocal)

let gain_blocks (path : Path.t) =
  [ (Spec.Amp, Spec.Gain, path.Path.amp.Amplifier.gain_db);
    (Spec.Mixer, Spec.Gain, path.Path.mixer.Mixer.gain_db);
    (Spec.Lpf, Spec.Passband_gain, path.Path.lpf.Lpf.gain_db) ]

(* Preceding gains at their low corners: the NF margin a stage receives
   must survive the least gain any in-tolerance part puts in front of it. *)
let nf_blocks (path : Path.t) =
  let low (p : Param.t) = p.Param.nominal -. p.Param.tol in
  let amp_low = low path.Path.amp.Amplifier.gain_db in
  let mixer_low = low path.Path.mixer.Mixer.gain_db in
  let lpf_low = low path.Path.lpf.Lpf.gain_db in
  [ (Spec.Amp, path.Path.amp.Amplifier.nf_db, 0.0);
    (Spec.Mixer, path.Path.mixer.Mixer.nf_db, amp_low);
    (Spec.Lpf, path.Path.lpf.Lpf.nf_db, amp_low +. mixer_low);
    (Spec.Adc, path.Path.adc.Adc.nf_db, amp_low +. mixer_low +. lpf_low) ]

let allocate requirements (path : Path.t) =
  let gain_lo, gain_hi = requirements.gain_db in
  let center = 0.5 *. (gain_lo +. gain_hi) in
  let half_range = 0.5 *. (gain_hi -. gain_lo) in
  let gains = gain_blocks path in
  let total_tol =
    List.fold_left (fun acc (_, _, p) -> acc +. Float.max p.Param.tol 1e-6) 0.0 gains
  in
  let nominal_sum = List.fold_left (fun acc (_, _, p) -> acc +. p.Param.nominal) 0.0 gains in
  let gain_allocs =
    List.map
      (fun (block, kind, (p : Param.t)) ->
        (* split the system half-range in proportion to the designer's own
           tolerance shares, re-centred so allocations sum to the target *)
        let share = Float.max p.Param.tol 1e-6 /. total_tol in
        let nominal = p.Param.nominal +. (share *. (center -. nominal_sum)) in
        let slack = share *. half_range in
        { block;
          kind;
          bound = Spec.Within { lo = nominal -. slack; hi = nominal +. slack };
          rationale =
            Printf.sprintf "gain partition: %.0f%% share of the ±%.1f dB system range"
              (100.0 *. share) half_range })
      gains
  in
  (* NF: distribute the linear noise-factor margin over the stages, each
     weighted down by the gain preceding it (Friis sensitivity).  The
     baseline cascade and the per-stage weights are evaluated at the LOW
     corners of the gain allocation just computed, so the margin is a true
     worst-case budget over every part the allocation accepts. *)
  let alloc_gain_low block kind =
    match List.find_opt (fun a -> a.block = block && a.kind = kind) gain_allocs with
    | Some { bound = Spec.Within { lo; _ }; _ } -> lo
    | Some _ | None -> invalid_arg "Backprop.allocate: gain allocation missing"
  in
  let amp_low = alloc_gain_low Spec.Amp Spec.Gain in
  let mixer_low = alloc_gain_low Spec.Mixer Spec.Gain in
  let lpf_low = alloc_gain_low Spec.Lpf Spec.Passband_gain in
  let stages =
    [ (Spec.Amp, path.Path.amp.Amplifier.nf_db, 0.0);
      (Spec.Mixer, path.Path.mixer.Mixer.nf_db, amp_low);
      (Spec.Lpf, path.Path.lpf.Lpf.nf_db, amp_low +. mixer_low);
      (Spec.Adc, path.Path.adc.Adc.nf_db, amp_low +. mixer_low +. lpf_low) ]
  in
  let nf_nominal_worst_gains =
    Compose.friis_nf_db
      ~nf_db:(Array.of_list (List.map (fun (_, (p : Param.t), _) -> p.Param.nominal) stages))
      ~gain_db:[| amp_low; mixer_low; lpf_low |]
  in
  let margin_linear =
    Units.power_ratio_of_db requirements.nf_max_db
    -. Units.power_ratio_of_db nf_nominal_worst_gains
  in
  let stage_count = float_of_int (List.length stages) in
  let nf_allocs =
    List.map
      (fun (block, (p : Param.t), preceding_gain_db) ->
        let delta_linear =
          Float.max 0.0 margin_linear /. stage_count
          *. Units.power_ratio_of_db preceding_gain_db
        in
        let ceiling =
          Units.db_of_power_ratio (Units.power_ratio_of_db p.Param.nominal +. delta_linear)
        in
        { block;
          kind = Spec.Noise_figure;
          bound = Spec.At_most ceiling;
          rationale =
            Printf.sprintf
              "Friis: stage margin diluted by %.0f dB of preceding gain" preceding_gain_db })
      stages
  in
  (* IIP3: reciprocal intercept budget split equally over the two active
     nonlinear stages. *)
  let nonlinear =
    (* each stage's floor assumes the worst-case gain in front of it, i.e.
       the high corner of the gain allocation just computed, so the cascade
       bound survives any part the allocation itself accepts *)
    let amp_alloc_hi =
      match
        List.find_opt (fun a -> a.block = Spec.Amp && a.kind = Spec.Gain) gain_allocs
      with
      | Some { bound = Spec.Within { hi; _ }; _ } -> hi
      | Some _ | None -> path.Path.amp.Amplifier.gain_db.Param.nominal
    in
    [ (Spec.Amp, 0.0); (Spec.Mixer, amp_alloc_hi) ]
  in
  let n = float_of_int (List.length nonlinear) in
  let iip3_allocs =
    List.map
      (fun (block, preceding_gain_db) ->
        let floor =
          requirements.iip3_min_dbm +. (10.0 *. Float.log10 n) +. preceding_gain_db
        in
        { block;
          kind = Spec.Iip3;
          bound = Spec.At_least floor;
          rationale =
            Printf.sprintf
              "cascade intercept: 1/%.0f of the reciprocal budget after %.0f dB of gain" n
              preceding_gain_db })
      nonlinear
  in
  let lo, hi = requirements.channel_cutoff_hz in
  let cutoff_alloc =
    { block = Spec.Lpf;
      kind = Spec.Cutoff_freq;
      bound = Spec.Within { lo; hi };
      rationale = "direct projection of the channel-selectivity requirement" }
  in
  gain_allocs @ nf_allocs @ iip3_allocs @ [ cutoff_alloc ]

type verification = {
  requirement : string;
  required : string;
  achieved_worst_case : string;
  satisfied : bool;
}

let find_bound allocations block kind =
  match List.find_opt (fun a -> a.block = block && a.kind = kind) allocations with
  | Some a -> a.bound
  | None -> invalid_arg "Backprop.verify: missing allocation"

let bound_corners = function
  | Spec.Within { lo; hi } -> (lo, hi)
  | Spec.At_least lo -> (lo, lo +. 60.0)
  | Spec.At_most hi -> (hi -. 60.0, hi)

let verify requirements (path : Path.t) allocations =
  let gain_lo, gain_hi = requirements.gain_db in
  let gain_corner pick =
    List.fold_left
      (fun acc (block, kind, _) -> acc +. pick (bound_corners (find_bound allocations block kind)))
      0.0 (gain_blocks path)
  in
  let gain_min = gain_corner fst and gain_max = gain_corner snd in
  let epsilon = 1e-6 in
  let gain_check =
    { requirement = "system gain window";
      required = Printf.sprintf "[%.1f, %.1f] dB" gain_lo gain_hi;
      achieved_worst_case = Printf.sprintf "[%.1f, %.1f] dB" gain_min gain_max;
      satisfied = gain_min >= gain_lo -. epsilon && gain_max <= gain_hi +. epsilon }
  in
  (* NF at the worst allocated corner: every stage NF at its ceiling, every
     gain at its allocated low corner. *)
  let nf_ceilings =
    List.map
      (fun (block, _, _) -> snd (bound_corners (find_bound allocations block Spec.Noise_figure)))
      (nf_blocks path)
  in
  let gain_lows =
    List.map
      (fun (block, kind, _) -> fst (bound_corners (find_bound allocations block kind)))
      (gain_blocks path)
  in
  let nf_worst =
    Compose.friis_nf_db ~nf_db:(Array.of_list nf_ceilings) ~gain_db:(Array.of_list gain_lows)
  in
  let nf_check =
    { requirement = "system noise figure";
      required = Printf.sprintf "<= %.2f dB" requirements.nf_max_db;
      achieved_worst_case = Printf.sprintf "%.2f dB" nf_worst;
      satisfied = nf_worst <= requirements.nf_max_db +. epsilon }
  in
  (* IIP3 with both stages at their allocated floors and the amp gain at its
     allocated high corner (worst for the mixer's referred intercept). *)
  let amp_iip3_floor = fst (bound_corners (find_bound allocations Spec.Amp Spec.Iip3)) in
  let mixer_iip3_floor = fst (bound_corners (find_bound allocations Spec.Mixer Spec.Iip3)) in
  let amp_gain_hi = snd (bound_corners (find_bound allocations Spec.Amp Spec.Gain)) in
  let iip3_worst =
    cascade_iip3_dbm ~gains_db:[| amp_gain_hi; 0.0 |]
      ~iip3_dbm:[| amp_iip3_floor; mixer_iip3_floor |]
  in
  let iip3_check =
    { requirement = "system IIP3";
      required = Printf.sprintf ">= %.1f dBm" requirements.iip3_min_dbm;
      achieved_worst_case = Printf.sprintf "%.1f dBm" iip3_worst;
      satisfied = iip3_worst >= requirements.iip3_min_dbm -. 0.1 }
  in
  let lo, hi = requirements.channel_cutoff_hz in
  let alloc_lo, alloc_hi = bound_corners (find_bound allocations Spec.Lpf Spec.Cutoff_freq) in
  let cutoff_check =
    { requirement = "channel corner";
      required = Printf.sprintf "[%.0f, %.0f] Hz" lo hi;
      achieved_worst_case = Printf.sprintf "[%.0f, %.0f] Hz" alloc_lo alloc_hi;
      satisfied = alloc_lo >= lo -. epsilon && alloc_hi <= hi +. epsilon }
  in
  [ gain_check; nf_check; iip3_check; cutoff_check ]
