lib/core/backprop.ml: Array Compose Float List Msoc_analog Msoc_util Printf Spec
