lib/core/plan.ml: Array Compose Coverage Float Format List Msoc_analog Msoc_stat Propagate Spec String
