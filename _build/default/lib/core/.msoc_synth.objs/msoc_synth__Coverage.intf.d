lib/core/coverage.mli: Msoc_stat Msoc_util Spec
