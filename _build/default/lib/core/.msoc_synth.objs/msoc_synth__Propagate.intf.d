lib/core/propagate.mli: Accuracy Format Msoc_analog Msoc_signal Spec
