lib/core/compose.mli: Accuracy Msoc_analog Spec
