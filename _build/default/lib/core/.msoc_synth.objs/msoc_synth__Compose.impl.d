lib/core/compose.ml: Accuracy Array Float Msoc_analog Msoc_util Spec
