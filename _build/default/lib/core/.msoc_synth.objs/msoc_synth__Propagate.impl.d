lib/core/propagate.ml: Accuracy Float Format List Msoc_analog Msoc_signal Msoc_util Spec String
