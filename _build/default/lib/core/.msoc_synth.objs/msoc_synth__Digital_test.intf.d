lib/core/digital_test.mli: Msoc_dsp Msoc_netlist
