lib/core/plan.mli: Compose Coverage Format Msoc_analog Msoc_stat Propagate Spec
