lib/core/digital_test.ml: Array Float Hashtbl List Msoc_dsp Msoc_netlist
