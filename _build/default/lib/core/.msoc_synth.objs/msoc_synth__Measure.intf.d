lib/core/measure.mli: Msoc_analog Msoc_dsp Propagate
