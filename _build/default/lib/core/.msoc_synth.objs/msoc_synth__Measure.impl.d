lib/core/measure.ml: Array Float List Msoc_analog Msoc_dsp Msoc_util Propagate
