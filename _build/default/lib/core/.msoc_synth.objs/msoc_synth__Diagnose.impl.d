lib/core/diagnose.ml: Array Float List Msoc_dsp Msoc_netlist Msoc_util
