lib/core/linearity.ml: Array Float Msoc_util
