lib/core/accuracy.ml: Float Format List String
