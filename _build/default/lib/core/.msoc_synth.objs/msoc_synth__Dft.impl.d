lib/core/dft.ml: Accuracy Coverage List Msoc_analog Plan Propagate Spec
