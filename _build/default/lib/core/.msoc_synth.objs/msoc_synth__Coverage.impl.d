lib/core/coverage.ml: Array Float List Msoc_stat Msoc_util Spec
