lib/core/spec.mli: Format Msoc_analog
