lib/core/diagnose.mli: Msoc_netlist
