lib/core/spec.ml: Format Msoc_analog
