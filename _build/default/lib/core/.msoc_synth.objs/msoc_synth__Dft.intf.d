lib/core/dft.mli: Accuracy Coverage Msoc_analog Propagate
