lib/core/linearity.mli:
