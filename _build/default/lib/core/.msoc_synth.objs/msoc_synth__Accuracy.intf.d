lib/core/accuracy.mli: Format
