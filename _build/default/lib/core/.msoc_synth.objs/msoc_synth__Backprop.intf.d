lib/core/backprop.mli: Msoc_analog Spec
