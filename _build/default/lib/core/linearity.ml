type result = {
  first_code : int;
  dnl : float array;
  inl : float array;
  max_abs_dnl : float;
  max_abs_inl : float;
  samples_used : int;
}

let expected_bin_probability ~amplitude ~offset ~lo ~hi =
  let phase v =
    let x = Msoc_util.Floatx.clamp ~lo:(-1.0) ~hi:1.0 ((v -. offset) /. amplitude) in
    asin x
  in
  (phase hi -. phase lo) /. Float.pi

let sine_histogram ~codes ~bits =
  let n = Array.length codes in
  let code_count = 1 lsl bits in
  if n < 4 * code_count then
    invalid_arg "Linearity.sine_histogram: too few samples for the code count";
  let minimum = Array.fold_left min max_int codes in
  let maximum = Array.fold_left max min_int codes in
  if maximum - minimum < code_count / 2 then
    invalid_arg "Linearity.sine_histogram: capture covers under half the range";
  let histogram = Array.make (maximum - minimum + 1) 0 in
  Array.iter (fun c -> histogram.(c - minimum) <- histogram.(c - minimum) + 1) codes;
  (* Estimate the sine's amplitude and offset from interior quantiles of
     the cumulative histogram (immune to clipping at the rails): the
     arcsine CDF gives CDF(v) = 1/2 + asin((v - off)/A)/pi, so the 25% and
     75% points sit at off -/+ A sin(pi/4). *)
  let quantile p =
    let target = p *. float_of_int n in
    let rec scan code acc =
      if code > maximum then float_of_int maximum
      else begin
        let acc' = acc + histogram.(code - minimum) in
        if float_of_int acc' >= target then begin
          (* linear interpolation inside the bin *)
          let inside = target -. float_of_int acc in
          let frac = inside /. float_of_int (max 1 histogram.(code - minimum)) in
          float_of_int code -. 0.5 +. frac
        end
        else scan (code + 1) acc'
      end
    in
    scan minimum 0
  in
  let v25 = quantile 0.25 and v75 = quantile 0.75 in
  let amplitude = (v75 -. v25) /. (2.0 *. sin (Float.pi /. 4.0)) in
  let offset = 0.5 *. (v25 +. v75) in
  if amplitude <= 0.0 then invalid_arg "Linearity.sine_histogram: degenerate capture";
  (* Guard bands: the arcsine density diverges at the peaks and the
     estimate of the extremes is noisy there. *)
  let guard = max 2 ((maximum - minimum) / 20) in
  let lo_code = minimum + guard and hi_code = maximum - guard in
  let width = hi_code - lo_code + 1 in
  if width < 8 then invalid_arg "Linearity.sine_histogram: covered range too narrow";
  (* Normalise against the total probability of the analysed strip so
     truncation does not bias every bin. *)
  let total_hits = ref 0 and total_probability = ref 0.0 in
  for code = lo_code to hi_code do
    total_hits := !total_hits + histogram.(code - minimum);
    total_probability :=
      !total_probability
      +. expected_bin_probability ~amplitude ~offset ~lo:(float_of_int code -. 0.5)
           ~hi:(float_of_int code +. 0.5)
  done;
  let dnl =
    Array.init width (fun i ->
        let code = lo_code + i in
        let expected =
          expected_bin_probability ~amplitude ~offset ~lo:(float_of_int code -. 0.5)
            ~hi:(float_of_int code +. 0.5)
          /. !total_probability
        in
        let observed = float_of_int histogram.(code - minimum) /. float_of_int !total_hits in
        (observed /. Float.max expected 1e-12) -. 1.0)
  in
  let inl = Array.make width 0.0 in
  let running = ref 0.0 in
  Array.iteri
    (fun i d ->
      running := !running +. d;
      inl.(i) <- !running)
    dnl;
  (* Remove the best-fit line from the INL (end-point correction): gain and
     offset errors are separate parameters, not linearity. *)
  let last = inl.(width - 1) in
  Array.iteri (fun i v -> inl.(i) <- v -. (last *. float_of_int (i + 1) /. float_of_int width)) inl;
  { first_code = lo_code;
    dnl;
    inl;
    max_abs_dnl = Msoc_util.Floatx.max_abs dnl;
    max_abs_inl = Msoc_util.Floatx.max_abs inl;
    samples_used = !total_hits }
