module Fir_netlist = Msoc_netlist.Fir_netlist
module Fault = Msoc_netlist.Fault
module Fault_sim = Msoc_netlist.Fault_sim
module Spectrum = Msoc_dsp.Spectrum
module Window = Msoc_dsp.Window
module Prng = Msoc_util.Prng

type signature = float array

let bands = 32

type entry = {
  fault : Fault.t;
  site : (int * Fir_netlist.role) option;
  signature : signature;
}

type t = {
  fir : Fir_netlist.t;
  sample_rate : float;
  golden_stream : int array;
  dictionary : entry array;
}

(* Deviation stream -> band-energy signature, peak-normalised in dB so the
   shape (not the fault's strength) is what matches. *)
let signature_of_deviation ~sample_rate deviation =
  if Array.for_all (fun d -> d = 0.0) deviation then Array.make bands 0.0
  else begin
    let spectrum = Spectrum.analyze ~window:Window.Hann ~sample_rate deviation in
    let nbins = Spectrum.bin_count spectrum in
    let energies = Array.make bands 0.0 in
    for k = 1 to nbins - 1 do
      let band = min (bands - 1) ((k - 1) * bands / (nbins - 1)) in
      energies.(band) <- energies.(band) +. spectrum.Spectrum.bins.(k)
    done;
    let db = Array.map (fun e -> if e <= 1e-30 then -300.0 else 10.0 *. Float.log10 e) energies in
    let peak = Array.fold_left Float.max neg_infinity db in
    Array.map (fun v -> Float.max (v -. peak) (-60.0)) db
  end

let is_zero signature = Array.for_all (fun v -> v = 0.0) signature

let deviation_of_stream fir golden stream =
  Array.init (Array.length golden) (fun i ->
      float_of_int (stream.(i) - golden.(i)) *. fir.Fir_netlist.scale)

let build fir ~sample_rate ~input_codes ~faults =
  let golden_stream = Fir_netlist.response fir input_codes in
  let dictionary = Array.make (Array.length faults) None in
  let drive sim cycle = Fir_netlist.drive fir sim input_codes.(cycle) in
  let (_ : int array) =
    Fault_sim.run_fold fir.Fir_netlist.circuit ~output:Fir_netlist.output_bus_name ~drive
      ~samples:(Array.length input_codes) ~faults
      ~on_fault:(fun index fault stream ->
        let deviation = deviation_of_stream fir golden_stream stream in
        let site =
          match Fir_netlist.region_of_node fir fault.Fault.node with
          | Some r -> Some (r.Fir_netlist.tap, r.Fir_netlist.role)
          | None -> None
        in
        dictionary.(index) <-
          Some { fault; site; signature = signature_of_deviation ~sample_rate deviation })
  in
  { fir;
    sample_rate;
    golden_stream;
    dictionary =
      Array.map
        (function Some e -> e | None -> invalid_arg "Diagnose.build: missing entry")
        dictionary }

let entries t = t.dictionary

let signature_of_stream t stream =
  signature_of_deviation ~sample_rate:t.sample_rate
    (deviation_of_stream t.fir t.golden_stream stream)

let distance a b =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt !acc

let diagnose t signature =
  let candidates =
    Array.to_list t.dictionary
    |> List.filter (fun e -> not (is_zero e.signature))
    |> List.map (fun e -> (distance signature e.signature, e))
  in
  List.sort (fun (a, _) (b, _) -> compare a b) candidates
  |> List.filteri (fun i _ -> i < 10)
  |> List.map snd

type accuracy = {
  diagnosable : int;
  site_match_rate : float;
  tap_match_rate : float;
}

let clustering_accuracy t ~sample ~seed =
  let diagnosable =
    Array.to_list t.dictionary |> List.filter (fun e -> not (is_zero e.signature))
  in
  let pool = Array.of_list diagnosable in
  let n = Array.length pool in
  let g = Prng.create seed in
  let count = min sample n in
  let site_hits = ref 0 and tap_hits = ref 0 in
  for _ = 1 to count do
    let probe = pool.(Prng.int g n) in
    (* nearest OTHER entry *)
    let best = ref None in
    Array.iter
      (fun e ->
        if not (Fault.equal e.fault probe.fault) then begin
          let d = distance probe.signature e.signature in
          match !best with
          | Some (d0, _) when d0 <= d -> ()
          | Some _ | None -> best := Some (d, e)
        end)
      pool;
    match (!best, probe.site) with
    | Some (_, nearest), Some (tap, role) ->
      (match nearest.site with
      | Some (tap', role') ->
        if tap = tap' then begin
          incr tap_hits;
          if role = role' then incr site_hits
        end
      | None -> ())
    | _, _ -> ()
  done;
  { diagnosable = n;
    site_match_rate = float_of_int !site_hits /. float_of_int (max 1 count);
    tap_match_rate = float_of_int !tap_hits /. float_of_int (max 1 count) }
