(** Spectral fault diagnosis for the digital filter.

    Detection (§5) asks {e whether} the output spectrum departs from the
    golden one; diagnosis asks {e where} the fault sits.  Each fault's
    deviation spectrum (faulty minus golden, band-integrated into a compact
    energy signature) is nearly unique to its structural site, so a
    dictionary built once by fault simulation localises an observed failure
    to a tap and datapath role — the natural follow-on the paper leaves to
    future work, built here on the netlist's structural region map. *)

module Fir_netlist = Msoc_netlist.Fir_netlist
module Fault = Msoc_netlist.Fault

type signature = float array
(** Band-integrated deviation energies, log-compressed; constant length
    {!bands} for one dictionary. *)

val bands : int
(** Number of frequency bands per signature (32). *)

type entry = {
  fault : Fault.t;
  site : (int * Fir_netlist.role) option;  (** Tap and role, when mapped. *)
  signature : signature;
}

type t
(** A fault dictionary for one filter and stimulus. *)

val build :
  Fir_netlist.t -> sample_rate:float -> input_codes:int array -> faults:Fault.t array -> t
(** Fault-simulate every fault under the stimulus and store its signature.
    Faults with no output deviation are kept with an all-zero signature
    (they can never be diagnosed — or detected). *)

val entries : t -> entry array

val signature_of_stream : t -> int array -> signature
(** Signature of an observed faulty output stream (against the dictionary's
    own golden stream). *)

val diagnose : t -> signature -> entry list
(** Dictionary entries ranked by signature similarity (best first; at most
    10, zero-signature entries excluded). *)

type accuracy = {
  diagnosable : int;        (** Faults with a nonzero signature. *)
  site_match_rate : float;  (** Nearest {e other} entry shares tap and role. *)
  tap_match_rate : float;   (** Nearest other entry shares the tap. *)
}

val clustering_accuracy : t -> sample:int -> seed:int -> accuracy
(** How strongly signatures cluster by structural site: for a random
    sample of diagnosable faults, find the nearest other dictionary entry
    and check whether it shares the site.  High rates mean an observed
    signature localises the failure even when the exact fault is not in
    the dictionary. *)
