lib/dsp/spectrum.ml: Array Complex Fft Float Window
