lib/dsp/metrics.mli: Spectrum
