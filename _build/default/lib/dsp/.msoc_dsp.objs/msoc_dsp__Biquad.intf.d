lib/dsp/biquad.mli:
