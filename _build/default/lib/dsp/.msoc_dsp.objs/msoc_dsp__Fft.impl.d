lib/dsp/fft.ml: Array Complex Float Msoc_util
