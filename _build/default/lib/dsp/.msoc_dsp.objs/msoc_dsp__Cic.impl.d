lib/dsp/cic.ml: Array Float List
