lib/dsp/biquad.ml: Array Complex Float List Msoc_util
