lib/dsp/window.ml: Array Msoc_util
