lib/dsp/spectrum.mli: Window
