lib/dsp/window.mli:
