lib/dsp/fir.mli: Complex Window
