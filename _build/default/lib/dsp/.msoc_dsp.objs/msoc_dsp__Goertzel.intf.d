lib/dsp/goertzel.mli: Complex
