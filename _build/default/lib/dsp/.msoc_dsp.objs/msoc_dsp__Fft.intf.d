lib/dsp/fft.mli: Complex
