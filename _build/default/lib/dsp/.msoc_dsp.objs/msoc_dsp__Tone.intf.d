lib/dsp/tone.mli:
