lib/dsp/goertzel.ml: Array Complex Float Msoc_util
