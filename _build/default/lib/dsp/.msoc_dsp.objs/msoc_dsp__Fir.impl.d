lib/dsp/fir.ml: Array Complex Float Msoc_util Window
