lib/dsp/cic.mli:
