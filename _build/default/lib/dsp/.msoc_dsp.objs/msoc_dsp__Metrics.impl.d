lib/dsp/metrics.ml: Array Float Hashtbl List Spectrum Window
