lib/dsp/tone.ml: Array Float List Msoc_util
