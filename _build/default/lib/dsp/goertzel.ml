let two_pi = Msoc_util.Units.two_pi

let bin signal ~k =
  let n = Array.length signal in
  assert (k >= 0 && k < n);
  let w = two_pi *. float_of_int k /. float_of_int n in
  let coeff = 2.0 *. cos w in
  let s1 = ref 0.0 and s2 = ref 0.0 in
  Array.iter
    (fun x ->
      let s0 = x +. (coeff *. !s1) -. !s2 in
      s2 := !s1;
      s1 := s0)
    signal;
  (* X_k = s1 e^{jw} - s2 (forward-DFT convention) *)
  { Complex.re = (!s1 *. cos w) -. !s2; im = !s1 *. sin w }

let power signal ~sample_rate ~freq =
  let n = Array.length signal in
  assert (n >= 2 && freq >= 0.0 && freq <= sample_rate /. 2.0);
  let k =
    min (n / 2) (int_of_float (Float.round (freq *. float_of_int n /. sample_rate)))
  in
  let c = bin signal ~k in
  let mag2 = (c.Complex.re *. c.Complex.re) +. (c.Complex.im *. c.Complex.im) in
  let scale = if k = 0 || (n mod 2 = 0 && k = n / 2) then 1.0 else 2.0 in
  scale *. mag2 /. (float_of_int n *. float_of_int n)

let power_db signal ~sample_rate ~freq =
  let p = power signal ~sample_rate ~freq in
  if p <= 1e-40 then -400.0 else 10.0 *. Float.log10 p
