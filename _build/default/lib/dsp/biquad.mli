(** Second-order IIR (biquad) sections.

    Used as the continuous-time-equivalent model of the analog low-pass
    filter: a Butterworth prototype mapped through the bilinear transform at
    the waveform-simulation rate.  Cascading two sections yields the 4th-
    order channel-select response of the experimental path. *)

type coeffs = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }
(** Direct-form-I coefficients with [a0] normalised to 1. *)

type state
(** Per-instance delay-line state. *)

val butterworth_lowpass : sample_rate:float -> cutoff:float -> coeffs
(** 2nd-order Butterworth low-pass via bilinear transform with frequency
    pre-warping.  Requires [0 < cutoff < sample_rate / 2]. *)

val create : coeffs -> state
val reset : state -> unit
val process_sample : state -> float -> float
val process : state -> float array -> float array
(** Stateful block processing (state carries across calls). *)

val magnitude_db : coeffs -> sample_rate:float -> freq:float -> float
(** Magnitude response at [freq] Hz. *)

val cascade_magnitude_db : coeffs list -> sample_rate:float -> freq:float -> float
