(** FIR filter design and reference (floating-point) evaluation.

    The digital filter under test in the paper is a 13-tap (and, for Fig. 1,
    16-tap) low-pass FIR.  This module designs the coefficient sets
    (windowed-sinc), quantizes them to the fixed-point word length realised
    by the gate-level datapath, and provides the behavioural golden model the
    structural netlist is validated against. *)

type design = {
  taps : float array;
  cutoff : float;        (** Normalised cutoff (fraction of sample rate). *)
  window : Window.kind;
}

val lowpass : taps:int -> cutoff:float -> ?window:Window.kind -> unit -> design
(** Windowed-sinc low-pass (default window {!Window.Hamming}).  [cutoff] is
    the -6 dB point as a fraction of the sample rate, in (0, 0.5).
    Coefficients are normalised to unity DC gain.  Requires [taps >= 1]. *)

val frequency_response : float array -> freq:float -> Complex.t
(** [H(e^{j 2 pi freq})] of a coefficient set; [freq] normalised to the
    sample rate. *)

val magnitude_db : float array -> freq:float -> float
val group_delay_samples : float array -> float
(** Group delay of a linear-phase (symmetric) FIR: [(n-1)/2] samples. *)

val quantize : float array -> bits:int -> int array * float
(** Round coefficients to signed [bits]-bit integers with a shared power-of-
    two scale chosen to maximise precision; returns [(codes, scale)] with
    [code * scale ~ coefficient].  Requires [2 <= bits <= 30]. *)

val dequantize : int array -> scale:float -> float array

val filter : float array -> float array -> float array
(** [filter taps x] is the causal convolution (same length as [x], zero
    initial state): the golden model of the gate-level datapath. *)
