let two_pi = Msoc_util.Units.two_pi

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  assert (n > 0);
  let rec grow p = if p >= n then p else grow (p * 2) in
  grow 1

(* Iterative radix-2 decimation-in-time: bit-reversal permutation followed by
   log2(N) butterfly stages with recurrence-updated twiddles. *)
let fft_in_place ~re ~im ~inverse =
  let n = Array.length re in
  assert (Array.length im = n && is_power_of_two n);
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in re.(i) <- re.(!j); re.(!j) <- tr;
      let ti = im.(i) in im.(i) <- im.(!j); im.(!j) <- ti
    end;
    let rec carry m =
      if m >= 1 && !j land m <> 0 then begin
        j := !j lxor m;
        carry (m lsr 1)
      end
      else j := !j lor m
    in
    carry (n lsr 1)
  done;
  let sign = if inverse then 1.0 else -1.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let angle = sign *. two_pi /. float_of_int !len in
    let wr_step = cos angle and wi_step = sin angle in
    let block = ref 0 in
    while !block < n do
      let wr = ref 1.0 and wi = ref 0.0 in
      for k = 0 to half - 1 do
        let a = !block + k and b = !block + k + half in
        let tr = (!wr *. re.(b)) -. (!wi *. im.(b)) in
        let ti = (!wr *. im.(b)) +. (!wi *. re.(b)) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let wr' = (!wr *. wr_step) -. (!wi *. wi_step) in
        wi := (!wr *. wi_step) +. (!wi *. wr_step);
        wr := wr'
      done;
      block := !block + !len
    done;
    len := !len * 2
  done;
  if inverse then begin
    let scale = 1.0 /. float_of_int n in
    for i = 0 to n - 1 do
      re.(i) <- re.(i) *. scale;
      im.(i) <- im.(i) *. scale
    done
  end

let split x =
  (Array.map (fun (c : Complex.t) -> c.re) x, Array.map (fun (c : Complex.t) -> c.im) x)

let join re im = Array.init (Array.length re) (fun i -> { Complex.re = re.(i); im = im.(i) })

let pow2_transform ~inverse x =
  let re, im = split x in
  fft_in_place ~re ~im ~inverse;
  join re im

(* Bluestein chirp-z: x_n * w_n convolved with conj(w) chirp, where
   w_n = exp(-i pi n^2 / N).  The linear convolution is carried out with a
   power-of-two circular FFT of length >= 2N - 1. *)
let bluestein ~inverse x =
  let n = Array.length x in
  let sign = if inverse then 1.0 else -1.0 in
  let chirp =
    Array.init n (fun k ->
        (* k^2 mod 2n keeps the angle argument small for large k. *)
        let k2 = k * k mod (2 * n) in
        let angle = sign *. Float.pi *. float_of_int k2 /. float_of_int n in
        { Complex.re = cos angle; im = sin angle })
  in
  let m = next_power_of_two ((2 * n) - 1) in
  let a = Array.make m Complex.zero in
  let b = Array.make m Complex.zero in
  for k = 0 to n - 1 do
    a.(k) <- Complex.mul x.(k) chirp.(k);
    let c = Complex.conj chirp.(k) in
    b.(k) <- c;
    if k > 0 then b.(m - k) <- c
  done;
  let fa = pow2_transform ~inverse:false a in
  let fb = pow2_transform ~inverse:false b in
  let product = Array.init m (fun i -> Complex.mul fa.(i) fb.(i)) in
  let conv = pow2_transform ~inverse:true product in
  let y = Array.init n (fun k -> Complex.mul conv.(k) chirp.(k)) in
  if inverse then Array.map (fun c -> Complex.div c { Complex.re = float_of_int n; im = 0.0 }) y
  else y

let transform ~inverse x =
  let n = Array.length x in
  assert (n >= 1);
  if n = 1 then Array.copy x
  else if is_power_of_two n then pow2_transform ~inverse x
  else bluestein ~inverse x

let fft x = transform ~inverse:false x
let ifft x = transform ~inverse:true x

let dft x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref Complex.zero in
      for j = 0 to n - 1 do
        let angle = -.two_pi *. float_of_int (k * j mod n) /. float_of_int n in
        let w = { Complex.re = cos angle; im = sin angle } in
        acc := Complex.add !acc (Complex.mul x.(j) w)
      done;
      !acc)

let rfft signal =
  let n = Array.length signal in
  assert (n >= 2);
  let x = Array.map (fun v -> { Complex.re = v; im = 0.0 }) signal in
  let full = fft x in
  Array.sub full 0 ((n / 2) + 1)
