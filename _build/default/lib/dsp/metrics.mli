(** Standard dynamic-performance metrics computed from a power spectrum.

    These are the quantities the paper's analog tests ultimately evaluate:
    SNR and SFDR bound which digital-filter faults remain visible above the
    analog noise floor, THD/harmonic powers feed the IIP3 and compression
    measurements, and ENOB summarises the ADC. *)

type report = {
  fundamental_freq : float;
  fundamental_power_db : float;
  snr_db : float;        (** Signal power over in-band noise (excl. harmonics). *)
  thd_db : float;        (** Total harmonic distortion relative to the carrier
                             (negative when distortion is below the carrier). *)
  sfdr_db : float;       (** Carrier over worst spur. *)
  sinad_db : float;
  enob_bits : float;
}

val analyze : ?harmonics:int -> Spectrum.t -> report
(** Locate the fundamental as the strongest non-DC tone and derive all
    metrics, folding aliased harmonics back into the first Nyquist zone.
    [harmonics] is the number of harmonics treated as distortion
    (default 5). *)

val snr_db : Spectrum.t -> fundamental:float -> float
(** SNR with an explicitly-known fundamental frequency. *)

val snr_multi_db : Spectrum.t -> signals:float list -> ?exclude:float list -> unit -> float
(** SNR of a multi-tone capture: signal power is the sum over [signals]
    tones; those tones, their harmonics, and any [exclude] frequencies
    (known spurs) are removed from the noise estimate. *)

val harmonic_power_db : Spectrum.t -> fundamental:float -> harmonic:int -> float
(** Power of the [harmonic]-th multiple of [fundamental] (2 = HD2, ...),
    alias-folded.  Requires [harmonic >= 1]. *)

val intermod3_products : f1:float -> f2:float -> float * float
(** The two third-order intermodulation frequencies [2 f1 - f2] and
    [2 f2 - f1] (absolute values). *)
