type t = {
  order : int;
  decimation : int;
  integrators : int array;
  combs : int array;
  mutable phase : int;
}

let create ~order ~decimation =
  if order < 1 then invalid_arg "Cic.create: order";
  if decimation < 2 then invalid_arg "Cic.create: decimation";
  let log2r = int_of_float (ceil (Float.log2 (float_of_int decimation))) in
  if order * log2r > 40 then invalid_arg "Cic.create: gain overflows the native word";
  { order;
    decimation;
    integrators = Array.make order 0;
    combs = Array.make order 0;
    phase = 0 }

let order t = t.order
let decimation t = t.decimation

let gain t =
  let rec power acc n = if n = 0 then acc else power (acc * t.decimation) (n - 1) in
  power 1 t.order

let reset t =
  Array.fill t.integrators 0 t.order 0;
  Array.fill t.combs 0 t.order 0;
  t.phase <- 0

let process t input =
  let out = ref [] in
  Array.iter
    (fun x ->
      (* integrator cascade at the input rate; native ints wrap which is
         exactly the Hogenauer arithmetic *)
      let acc = ref x in
      for i = 0 to t.order - 1 do
        t.integrators.(i) <- t.integrators.(i) + !acc;
        acc := t.integrators.(i)
      done;
      t.phase <- t.phase + 1;
      if t.phase >= t.decimation then begin
        t.phase <- 0;
        (* comb cascade at the output rate *)
        let v = ref t.integrators.(t.order - 1) in
        for i = 0 to t.order - 1 do
          let delayed = t.combs.(i) in
          t.combs.(i) <- !v;
          v := !v - delayed
        done;
        out := !v :: !out
      end)
    input;
  Array.of_list (List.rev !out)

let magnitude_db t ~input_rate ~freq =
  let r = float_of_int t.decimation in
  let x = Float.pi *. freq /. input_rate in
  let mag =
    if Float.abs x < 1e-12 then 1.0
    else begin
      let numerator = sin (x *. r) and denominator = r *. sin x in
      if Float.abs denominator < 1e-30 then 0.0 else Float.abs (numerator /. denominator)
    end
  in
  if mag <= 1e-20 then -400.0
  else 20.0 *. float_of_int t.order *. Float.log10 mag /. 1.0
