(** Goertzel single-bin DFT.

    Mixed-signal testers read a handful of known tone bins rather than a
    full spectrum; the Goertzel recurrence computes one bin in O(N) with
    two state variables.  Exact for bin-centred frequencies and matching
    {!Fft} bin values there. *)

val bin : float array -> k:int -> Complex.t
(** DFT bin [k] of the signal (same convention as {!Fft.fft}).
    Requires [0 <= k < length]. *)

val power : float array -> sample_rate:float -> freq:float -> float
(** One-sided mean-square power of the tone at the bin nearest [freq]
    (rectangular window): a sine of amplitude [a] at a coherent frequency
    reads [a^2 / 2]. *)

val power_db : float array -> sample_rate:float -> freq:float -> float
(** [10 log10] of {!power}, floored at -400 dB. *)
