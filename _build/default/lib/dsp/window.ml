let two_pi = Msoc_util.Units.two_pi

type kind = Rectangular | Hann | Hamming | Blackman | Blackman_harris

let all = [ Rectangular; Hann; Hamming; Blackman; Blackman_harris ]

let name = function
  | Rectangular -> "rectangular"
  | Hann -> "hann"
  | Hamming -> "hamming"
  | Blackman -> "blackman"
  | Blackman_harris -> "blackman-harris"

(* Cosine-sum coefficients (periodic form, suitable for spectral analysis). *)
let cosine_terms = function
  | Rectangular -> [| 1.0 |]
  | Hann -> [| 0.5; -0.5 |]
  | Hamming -> [| 0.54; -0.46 |]
  | Blackman -> [| 0.42; -0.5; 0.08 |]
  | Blackman_harris -> [| 0.35875; -0.48829; 0.14128; -0.01168 |]

let coefficients kind n =
  assert (n >= 1);
  let terms = cosine_terms kind in
  Array.init n (fun i ->
      let phase = two_pi *. float_of_int i /. float_of_int n in
      let acc = ref 0.0 in
      Array.iteri (fun k a -> acc := !acc +. (a *. cos (float_of_int k *. phase))) terms;
      !acc)

let coherent_gain kind = (cosine_terms kind).(0)

let noise_bandwidth_bins kind =
  (* ENBW = N * sum w^2 / (sum w)^2; for cosine-sum windows this converges to
     sum a_k^2/2 (a_0^2 counted fully) over a_0^2. *)
  let terms = cosine_terms kind in
  let sum_sq =
    Array.fold_left (fun acc a -> acc +. (a *. a /. 2.0)) (terms.(0) *. terms.(0) /. 2.0) terms
  in
  sum_sq /. (terms.(0) *. terms.(0))

let apply kind signal =
  let w = coefficients kind (Array.length signal) in
  Array.mapi (fun i x -> x *. w.(i)) signal
