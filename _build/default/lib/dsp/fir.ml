let two_pi = Msoc_util.Units.two_pi

type design = {
  taps : float array;
  cutoff : float;
  window : Window.kind;
}

let sinc x = if Float.abs x < 1e-12 then 1.0 else sin (Float.pi *. x) /. (Float.pi *. x)

let lowpass ~taps ~cutoff ?(window = Window.Hamming) () =
  assert (taps >= 1 && cutoff > 0.0 && cutoff < 0.5);
  let middle = float_of_int (taps - 1) /. 2.0 in
  (* Symmetric window: evaluate the cosine-sum over [0, taps-1] so that the
     coefficient set stays exactly linear-phase. *)
  let win =
    Array.init taps (fun i ->
        let phase = two_pi *. float_of_int i /. float_of_int (max 1 (taps - 1)) in
        match window with
        | Window.Rectangular -> 1.0
        | Window.Hann -> 0.5 -. (0.5 *. cos phase)
        | Window.Hamming -> 0.54 -. (0.46 *. cos phase)
        | Window.Blackman -> 0.42 -. (0.5 *. cos phase) +. (0.08 *. cos (2.0 *. phase))
        | Window.Blackman_harris ->
          0.35875 -. (0.48829 *. cos phase) +. (0.14128 *. cos (2.0 *. phase))
          -. (0.01168 *. cos (3.0 *. phase)))
  in
  let raw =
    Array.init taps (fun i ->
        let x = float_of_int i -. middle in
        2.0 *. cutoff *. sinc (2.0 *. cutoff *. x) *. win.(i))
  in
  let dc = Array.fold_left ( +. ) 0.0 raw in
  let taps_arr = Array.map (fun c -> c /. dc) raw in
  { taps = taps_arr; cutoff; window }

let frequency_response taps ~freq =
  let acc = ref Complex.zero in
  Array.iteri
    (fun i c ->
      let angle = -.two_pi *. freq *. float_of_int i in
      acc := Complex.add !acc { Complex.re = c *. cos angle; im = c *. sin angle })
    taps;
  !acc

let magnitude_db taps ~freq =
  let h = frequency_response taps ~freq in
  let mag = Complex.norm h in
  if mag <= 1e-20 then -400.0 else 20.0 *. Float.log10 mag

let group_delay_samples taps = float_of_int (Array.length taps - 1) /. 2.0

let quantize taps ~bits =
  assert (bits >= 2 && bits <= 30);
  let peak = Msoc_util.Floatx.max_abs taps in
  assert (peak > 0.0);
  (* Largest power-of-two scale keeping every code inside the signed range. *)
  let limit = float_of_int ((1 lsl (bits - 1)) - 1) in
  let rec find_shift shift =
    if peak *. Float.pow 2.0 (float_of_int (shift + 1)) <= limit then find_shift (shift + 1)
    else shift
  in
  let shift = find_shift 0 in
  let scale = Float.pow 2.0 (float_of_int (-shift)) in
  let codes = Array.map (fun c -> int_of_float (Float.round (c /. scale))) taps in
  (codes, scale)

let dequantize codes ~scale = Array.map (fun c -> float_of_int c *. scale) codes

let filter taps x =
  let nt = Array.length taps and nx = Array.length x in
  Array.init nx (fun n ->
      let acc = ref 0.0 in
      for k = 0 to min (nt - 1) n do
        acc := !acc +. (taps.(k) *. x.(n - k))
      done;
      !acc)
