(** Cascaded integrator–comb (CIC) decimation filters.

    The standard decimator behind a sigma–delta modulator: [order]
    integrators running at the input rate followed by [order] combs at the
    decimated rate.  All arithmetic is in native integers with wrap-around
    (the classic Hogenauer trick: wrap-around cancels through the combs as
    long as the word is wide enough for the worst-case gain, which
    {!create} checks). *)

type t

val create : order:int -> decimation:int -> t
(** Requires [order >= 1], [decimation >= 2], and
    [order * log2 decimation <= 40] so the gain fits a native word with
    input magnitudes up to 2^20. *)

val order : t -> int
val decimation : t -> int

val gain : t -> int
(** DC gain = decimation ^ order. *)

val reset : t -> unit

val process : t -> int array -> int array
(** Feed input-rate samples, get decimated-rate samples (state persists
    across calls; output length is [floor (input length / decimation)] plus
    any carry-over phase). *)

val magnitude_db : t -> input_rate:float -> freq:float -> float
(** Magnitude response at the input rate, normalised to unity DC gain:
    [|sin(pi f R / fs) / (R sin(pi f / fs))| ^ order]. *)
