type coeffs = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }

type state = {
  coeffs : coeffs;
  mutable x1 : float;
  mutable x2 : float;
  mutable y1 : float;
  mutable y2 : float;
}

let butterworth_lowpass ~sample_rate ~cutoff =
  assert (cutoff > 0.0 && cutoff < sample_rate /. 2.0);
  (* Bilinear transform with pre-warping: K = tan(pi fc / fs). *)
  let k = tan (Float.pi *. cutoff /. sample_rate) in
  let q = 1.0 /. sqrt 2.0 in
  let k2 = k *. k in
  let norm = 1.0 /. (1.0 +. (k /. q) +. k2) in
  { b0 = k2 *. norm;
    b1 = 2.0 *. k2 *. norm;
    b2 = k2 *. norm;
    a1 = 2.0 *. (k2 -. 1.0) *. norm;
    a2 = (1.0 -. (k /. q) +. k2) *. norm }

let create coeffs = { coeffs; x1 = 0.0; x2 = 0.0; y1 = 0.0; y2 = 0.0 }

let reset s =
  s.x1 <- 0.0;
  s.x2 <- 0.0;
  s.y1 <- 0.0;
  s.y2 <- 0.0

let process_sample s x =
  let { b0; b1; b2; a1; a2 } = s.coeffs in
  let y = (b0 *. x) +. (b1 *. s.x1) +. (b2 *. s.x2) -. (a1 *. s.y1) -. (a2 *. s.y2) in
  s.x2 <- s.x1;
  s.x1 <- x;
  s.y2 <- s.y1;
  s.y1 <- y;
  y

let process s xs = Array.map (process_sample s) xs

let magnitude_db c ~sample_rate ~freq =
  let w = Msoc_util.Units.two_pi *. freq /. sample_rate in
  let z1 = { Complex.re = cos w; im = -.sin w } in
  let z2 = Complex.mul z1 z1 in
  let scale k = { Complex.re = k; im = 0.0 } in
  let num =
    Complex.add (scale c.b0) (Complex.add (Complex.mul (scale c.b1) z1) (Complex.mul (scale c.b2) z2))
  in
  let den =
    Complex.add (scale 1.0) (Complex.add (Complex.mul (scale c.a1) z1) (Complex.mul (scale c.a2) z2))
  in
  let mag = Complex.norm num /. Complex.norm den in
  if mag <= 1e-20 then -400.0 else 20.0 *. Float.log10 mag

let cascade_magnitude_db coeffs_list ~sample_rate ~freq =
  List.fold_left (fun acc c -> acc +. magnitude_db c ~sample_rate ~freq) 0.0 coeffs_list
