module Prng = Msoc_util.Prng
module Units = Msoc_util.Units

type t =
  | Normal of { mean : float; sigma : float }
  | Uniform of { lo : float; hi : float }

let normal ~mean ~sigma =
  assert (sigma > 0.0);
  Normal { mean; sigma }

let uniform ~lo ~hi =
  assert (lo < hi);
  Uniform { lo; hi }

let normal_of_tolerance ~nominal ~tol = normal ~mean:nominal ~sigma:(Float.abs tol /. 3.0)

let pdf t x =
  match t with
  | Normal { mean; sigma } ->
    let z = (x -. mean) /. sigma in
    exp (-0.5 *. z *. z) /. (sigma *. sqrt Units.two_pi)
  | Uniform { lo; hi } -> if x >= lo && x <= hi then 1.0 /. (hi -. lo) else 0.0

let cdf t x =
  match t with
  | Normal { mean; sigma } -> 0.5 *. Special.erfc ((mean -. x) /. (sigma *. sqrt 2.0))
  | Uniform { lo; hi } ->
    if x <= lo then 0.0 else if x >= hi then 1.0 else (x -. lo) /. (hi -. lo)

let quantile t p =
  assert (p > 0.0 && p < 1.0);
  match t with
  | Normal { mean; sigma } -> mean +. (sigma *. Special.probit p)
  | Uniform { lo; hi } -> lo +. (p *. (hi -. lo))

let sample t g =
  match t with
  | Normal { mean; sigma } -> Prng.gaussian_scaled g ~mean ~sigma
  | Uniform { lo; hi } -> Prng.uniform g ~lo ~hi

let mean = function Normal { mean; _ } -> mean | Uniform { lo; hi } -> 0.5 *. (lo +. hi)

let stddev = function
  | Normal { sigma; _ } -> sigma
  | Uniform { lo; hi } -> (hi -. lo) /. sqrt 12.0

let prob_between t ~lo ~hi =
  assert (lo <= hi);
  cdf t hi -. cdf t lo

let pp ppf = function
  | Normal { mean; sigma } -> Format.fprintf ppf "Normal(mean=%g, sigma=%g)" mean sigma
  | Uniform { lo; hi } -> Format.fprintf ppf "Uniform[%g, %g]" lo hi
