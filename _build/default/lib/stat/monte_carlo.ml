type probability_estimate = {
  trials : int;
  successes : int;
  p : float;
  half_width_95 : float;
}

let z_95 = 1.959963984540054

let estimate_probability ~trials ~rng ~f =
  assert (trials > 0);
  let successes = ref 0 in
  for _ = 1 to trials do
    if f rng then incr successes
  done;
  let n = float_of_int trials in
  let p = float_of_int !successes /. n in
  let half_width_95 = z_95 *. sqrt (p *. (1.0 -. p) /. n) in
  { trials; successes = !successes; p; half_width_95 }

type mean_estimate = {
  trials : int;
  mean : float;
  stddev : float;
  half_width_95 : float;
}

let estimate_mean ~trials ~rng ~f =
  assert (trials > 1);
  let samples = Array.init trials (fun _ -> f rng) in
  let s = Describe.summarize samples in
  { trials;
    mean = s.Describe.mean;
    stddev = s.Describe.stddev;
    half_width_95 = z_95 *. s.Describe.stddev /. sqrt (float_of_int trials) }

let sample_array ~trials ~rng ~f = Array.init trials (fun _ -> f rng)
