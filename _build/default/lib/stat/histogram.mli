(** Fixed-bin histograms, used to visualise parameter distributions (paper
    Fig. 2) and to validate Monte-Carlo sampling against analytic pdfs. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
(** Values outside [\[lo, hi)] are counted in the under/overflow slots. *)

val add_all : t -> float array -> unit
val counts : t -> int array
val total : t -> int
(** Number of in-range values added. *)

val underflow : t -> int
val overflow : t -> int

val bin_center : t -> int -> float
val bin_width : t -> float

val density : t -> int -> float
(** Normalised so that the histogram integrates to 1 over in-range mass. *)

val to_series : t -> (float * float) array
(** [(bin_center, density)] pairs, ready for plotting or table output. *)
