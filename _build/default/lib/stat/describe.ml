type summary = {
  count : int;
  mean : float;
  variance : float;
  stddev : float;
  minimum : float;
  maximum : float;
}

(* Welford's online algorithm: numerically stable single pass. *)
let summarize xs =
  assert (Array.length xs > 0);
  let count = ref 0 and mean = ref 0.0 and m2 = ref 0.0 in
  let minimum = ref infinity and maximum = ref neg_infinity in
  Array.iter
    (fun x ->
      incr count;
      let delta = x -. !mean in
      mean := !mean +. (delta /. float_of_int !count);
      m2 := !m2 +. (delta *. (x -. !mean));
      if x < !minimum then minimum := x;
      if x > !maximum then maximum := x)
    xs;
  let variance = if !count < 2 then 0.0 else !m2 /. float_of_int (!count - 1) in
  { count = !count; mean = !mean; variance; stddev = sqrt variance;
    minimum = !minimum; maximum = !maximum }

let percentile xs p =
  assert (Array.length xs > 0 && p >= 0.0 && p <= 1.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let position = p *. float_of_int (n - 1) in
  let below = int_of_float (Float.floor position) in
  let above = min (below + 1) (n - 1) in
  let fraction = position -. float_of_int below in
  sorted.(below) +. (fraction *. (sorted.(above) -. sorted.(below)))

let median xs = percentile xs 0.5

let rms xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Msoc_util.Floatx.sum (Array.map (fun x -> x *. x) xs) in
    sqrt (acc /. float_of_int n)
  end
