(** Special functions needed by the statistical models.

    Implemented from scratch (no numeric ecosystem available): the error
    function pair uses W. J. Cody's rational approximations (double-precision
    accurate to ~1e-16 relative on the primary range) and the inverse normal
    CDF uses Acklam's algorithm refined by one Halley step. *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function, accurate for large arguments. *)

val probit : float -> float
(** Inverse standard-normal CDF.  Requires the argument in (0, 1). *)
