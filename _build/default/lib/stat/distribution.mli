(** Univariate distributions for parameter modelling.

    The paper models a defect-free analog parameter as a random variable whose
    spread is set by the designer's tolerance.  Following common CAD practice
    we map a "± tol" specification to a normal distribution with
    [sigma = tol / 3] (99.73% of defect-free parts inside the tolerance),
    which {!normal_of_tolerance} encodes. *)

type t =
  | Normal of { mean : float; sigma : float }
  | Uniform of { lo : float; hi : float }

val normal : mean:float -> sigma:float -> t
(** Requires [sigma > 0]. *)

val uniform : lo:float -> hi:float -> t
(** Requires [lo < hi]. *)

val normal_of_tolerance : nominal:float -> tol:float -> t
(** Normal with [mean = nominal] and [sigma = |tol| / 3]. *)

val pdf : t -> float -> float
val cdf : t -> float -> float

val quantile : t -> float -> float
(** Inverse CDF.  Requires the probability in (0, 1). *)

val sample : t -> Msoc_util.Prng.t -> float
val mean : t -> float
val stddev : t -> float

val prob_between : t -> lo:float -> hi:float -> float
(** Probability mass on [\[lo, hi\]].  Requires [lo <= hi]. *)

val pp : Format.formatter -> t -> unit
