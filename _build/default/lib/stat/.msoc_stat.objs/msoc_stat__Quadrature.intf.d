lib/stat/quadrature.mli:
