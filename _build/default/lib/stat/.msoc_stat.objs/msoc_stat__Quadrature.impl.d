lib/stat/quadrature.ml: Array Float
