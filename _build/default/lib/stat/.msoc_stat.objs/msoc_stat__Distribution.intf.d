lib/stat/distribution.mli: Format Msoc_util
