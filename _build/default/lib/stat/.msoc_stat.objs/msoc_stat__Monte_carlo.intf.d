lib/stat/monte_carlo.mli: Msoc_util
