lib/stat/describe.ml: Array Float Msoc_util
