lib/stat/distribution.ml: Float Format Msoc_util Special
