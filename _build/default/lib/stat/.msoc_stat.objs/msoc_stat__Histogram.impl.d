lib/stat/histogram.ml: Array
