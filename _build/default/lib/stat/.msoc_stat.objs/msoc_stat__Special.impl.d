lib/stat/special.ml: Array Float Msoc_util
