lib/stat/describe.mli:
