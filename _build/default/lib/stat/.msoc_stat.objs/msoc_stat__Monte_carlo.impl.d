lib/stat/monte_carlo.ml: Array Describe
