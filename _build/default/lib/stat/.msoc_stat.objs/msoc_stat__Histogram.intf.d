lib/stat/histogram.mli:
