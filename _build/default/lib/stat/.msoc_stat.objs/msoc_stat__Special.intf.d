lib/stat/special.mli:
