(* Cody-style rational approximations for erf/erfc.  Three regimes:
   |x| <= 0.5 uses the erf series ratio, 0.5 < |x| <= 4 and |x| > 4 use the
   scaled erfc ratios; symmetry extends to negative arguments. *)

let erf_small x =
  (* erf(x) = x * P(x^2)/Q(x^2) for |x| <= 0.5 *)
  let z = x *. x in
  let p =
    ((((-0.356098437018154e-1 *. z) +. 0.699638348861914e1) *. z +. 0.219792616182942e2) *. z
    +. 0.242667955230532e3)
  in
  let q = (((z +. 0.150827976304078e2) *. z +. 0.911649054045149e2) *. z +. 0.215058875869861e3) in
  x *. p /. q

let erfc_mid x =
  (* erfc(x) = exp(-x^2) * P(x)/Q(x) for 0.46875 <= x <= 4 *)
  let p =
    ((((((((-0.136864857382717e-6 *. x) +. 0.564195517478974) *. x +. 0.721175825088309e1) *. x
        +. 0.431622272220567e2)
       *. x
      +. 0.152989285046940e3)
      *. x
     +. 0.339320816734344e3)
     *. x
    +. 0.451918953711873e3)
    *. x
    +. 0.300459261020162e3)
  in
  let q =
    (((((((x +. 0.127827273196294e2) *. x +. 0.770001529352295e2) *. x +. 0.277585444743988e3) *. x
       +. 0.638980264465631e3)
      *. x
     +. 0.931354094850610e3)
     *. x
    +. 0.790950925327898e3)
    *. x
    +. 0.300459260956983e3)
  in
  exp (-.x *. x) *. p /. q

let erfc_large x =
  (* erfc(x) = exp(-x^2)/(x*sqrt(pi)) * (1 + R(1/x^2)) for x > 4 *)
  let z = 1.0 /. (x *. x) in
  let p =
    ((((0.223192459734185e-1 *. z +. 0.278661308609648) *. z +. 0.226956593539687) *. z
     +. 0.494730910623251e-1)
     *. z
    +. 0.299610707703542e-2)
  in
  let q =
    ((((z +. 0.198733201817135e1) *. z +. 0.105167510706793e1) *. z +. 0.191308926107830) *. z
    +. 0.106209230528468e-1)
  in
  let r = z *. p /. q in
  exp (-.x *. x) *. (0.564189583547756 -. r) /. x

let erfc x =
  let ax = Float.abs x in
  let tail =
    if ax <= 0.46875 then 1.0 -. erf_small ax
    else if ax <= 4.0 then erfc_mid ax
    else if ax < 26.6 then erfc_large ax
    else 0.0
  in
  if x >= 0.0 then tail else 2.0 -. tail

let erf x =
  let ax = Float.abs x in
  let v = if ax <= 0.46875 then erf_small ax else 1.0 -. erfc ax in
  if x >= 0.0 then v else -.v

(* Acklam's rational approximation to the inverse normal CDF, then one Halley
   refinement step against erfc for full double precision. *)
let probit p =
  assert (p > 0.0 && p < 1.0);
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
         /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
    end
  in
  let e = 0.5 *. erfc (-.x /. sqrt 2.0) -. p in
  let u = e *. sqrt Msoc_util.Units.two_pi *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))
