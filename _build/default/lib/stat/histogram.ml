type t = {
  lo : float;
  hi : float;
  bins : int;
  counts : int array;
  mutable total : int;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  assert (lo < hi && bins > 0);
  { lo; hi; bins; counts = Array.make bins 0; total = 0; underflow = 0; overflow = 0 }

let add t x =
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let span = t.hi -. t.lo in
    let index = int_of_float (float_of_int t.bins *. (x -. t.lo) /. span) in
    let index = min index (t.bins - 1) in
    t.counts.(index) <- t.counts.(index) + 1;
    t.total <- t.total + 1
  end

let add_all t xs = Array.iter (add t) xs
let counts t = Array.copy t.counts
let total t = t.total
let underflow t = t.underflow
let overflow t = t.overflow
let bin_width t = (t.hi -. t.lo) /. float_of_int t.bins
let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. bin_width t)

let density t i =
  if t.total = 0 then 0.0
  else float_of_int t.counts.(i) /. (float_of_int t.total *. bin_width t)

let to_series t = Array.init t.bins (fun i -> (bin_center t i, density t i))
