(** Numerical integration used by the analytic fault-coverage/yield-loss
    computations (paper Figs. 2 & 5, Table 2). *)

val simpson : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite Simpson rule with [n] panels ([n] is rounded up to even).
    Requires [lo <= hi]. *)

val adaptive_simpson : ?tol:float -> ?max_depth:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Adaptive Simpson with absolute tolerance [tol] (default 1e-10). *)

val gauss_legendre_nodes : int -> (float * float) array
(** [gauss_legendre_nodes n] are the nodes and weights on [\[-1, 1\]] for an
    [n]-point rule, computed by Newton iteration on Legendre polynomials. *)

val gauss_legendre : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** [n]-point Gauss–Legendre quadrature on [\[lo, hi\]]. *)
