let simpson ~f ~lo ~hi ~n =
  assert (lo <= hi);
  if lo = hi then 0.0
  else begin
    let n = if n mod 2 = 0 then n else n + 1 in
    let h = (hi -. lo) /. float_of_int n in
    let acc = ref (f lo +. f hi) in
    for i = 1 to n - 1 do
      let x = lo +. (float_of_int i *. h) in
      let w = if i mod 2 = 1 then 4.0 else 2.0 in
      acc := !acc +. (w *. f x)
    done;
    !acc *. h /. 3.0
  end

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 40) ~f ~lo ~hi () =
  let simpson3 a b =
    let m = 0.5 *. (a +. b) in
    ((b -. a) /. 6.0 *. (f a +. (4.0 *. f m) +. f b), m)
  in
  let rec refine a b whole tol depth =
    let m = 0.5 *. (a +. b) in
    let left, _ = simpson3 a m and right, _ = simpson3 m b in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15.0 *. tol then left +. right +. (delta /. 15.0)
    else
      refine a m left (tol /. 2.0) (depth - 1) +. refine m b right (tol /. 2.0) (depth - 1)
  in
  if lo = hi then 0.0
  else begin
    let whole, _ = simpson3 lo hi in
    refine lo hi whole tol max_depth
  end

(* Legendre polynomial value and derivative by the three-term recurrence. *)
let legendre_pair n x =
  let rec loop k pkm1 pk =
    if k >= n then (pk, pkm1)
    else begin
      let kf = float_of_int k in
      let pkp1 = (((2.0 *. kf) +. 1.0) *. x *. pk -. (kf *. pkm1)) /. (kf +. 1.0) in
      loop (k + 1) pk pkp1
    end
  in
  let pn, pnm1 = loop 1 1.0 x in
  let dpn = float_of_int n *. ((x *. pn) -. pnm1) /. ((x *. x) -. 1.0) in
  (pn, dpn)

let gauss_legendre_nodes n =
  assert (n >= 1);
  Array.init n (fun i ->
      (* Chebyshev-like initial guess, then Newton. *)
      let x0 = cos (Float.pi *. (float_of_int i +. 0.75) /. (float_of_int n +. 0.5)) in
      let rec newton x iter =
        let pn, dpn = legendre_pair n x in
        let x' = x -. (pn /. dpn) in
        if Float.abs (x' -. x) < 1e-15 || iter > 100 then x' else newton x' (iter + 1)
      in
      let x = newton x0 0 in
      let _, dpn = legendre_pair n x in
      (x, 2.0 /. ((1.0 -. (x *. x)) *. dpn *. dpn)))

let gauss_legendre ~f ~lo ~hi ~n =
  let nodes = gauss_legendre_nodes n in
  let half = 0.5 *. (hi -. lo) and midpoint = 0.5 *. (hi +. lo) in
  let acc = ref 0.0 in
  Array.iter (fun (x, w) -> acc := !acc +. (w *. f (midpoint +. (half *. x)))) nodes;
  !acc *. half
