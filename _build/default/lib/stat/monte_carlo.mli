(** Monte-Carlo estimation engine.

    The paper obtains parameter distributions "through Monte-Carlo simulations
    during the design process"; this module provides the generic trial loop
    and the probability/mean estimators with binomial / CLT confidence
    intervals that the coverage analyses build on. *)

type probability_estimate = {
  trials : int;
  successes : int;
  p : float;            (** Point estimate. *)
  half_width_95 : float; (** 95% normal-approximation half width. *)
}

val estimate_probability :
  trials:int -> rng:Msoc_util.Prng.t -> f:(Msoc_util.Prng.t -> bool) -> probability_estimate
(** Requires [trials > 0].  [f] is called once per trial with the shared
    generator. *)

type mean_estimate = {
  trials : int;
  mean : float;
  stddev : float;
  half_width_95 : float;
}

val estimate_mean :
  trials:int -> rng:Msoc_util.Prng.t -> f:(Msoc_util.Prng.t -> float) -> mean_estimate
(** Requires [trials > 1]. *)

val sample_array :
  trials:int -> rng:Msoc_util.Prng.t -> f:(Msoc_util.Prng.t -> float) -> float array
(** Collect raw trial outputs for downstream histogramming. *)
