(** The experimental signal path of the paper (Fig. 6):

    {v Amp -> Mixer (LO) -> LPF -> ADC -> digital filter v}

    This module owns the composed structure: parameter sets of each block, a
    manufactured-part sampler, the streaming waveform engine (simulation
    rate in, ADC codes out), and the attribute-domain propagation that the
    test-synthesis core consumes. *)

module Attr = Msoc_signal.Attr

type t = {
  ctx : Context.t;
  amp : Amplifier.params;
  lo : Local_osc.params;
  mixer : Mixer.params;
  lpf : Lpf.params;
  adc : Adc.params;
  adc_decimation : int;
}

type part = {
  amp_v : Amplifier.values;
  lo_v : Local_osc.values;
  mixer_v : Mixer.values;
  lpf_v : Lpf.values;
  adc_v : Adc.values;
}

val default_receiver : unit -> t
(** 8 MHz simulation rate; 1 MHz LO; 200 kHz channel LPF clocked at
    3.3 MHz; 12-bit ±1 V ADC at 1 MHz (decimation 8). *)

val adc_rate_hz : t -> float
val nominal_part : t -> part
val sample_part : t -> Msoc_util.Prng.t -> part
(** Defect-free manufacturing instance of the whole path. *)

val nominal_path_gain_db : t -> float
(** Sum of nominal pass-band gains (Amp + Mixer + LPF). *)

val path_gain_interval_db : t -> Msoc_util.Interval.t
(** Pass-band path gain with all gain tolerances accumulated. *)

type engine

val engine : t -> part -> seed:int -> engine
(** Instantiate every block; all stochastic behaviour (noise, phase noise,
    DNL realisation) derives deterministically from [seed]. *)

val run_codes : engine -> float array -> int array
(** Input waveform at the simulation rate (volts at the primary input) to
    ADC output codes at the decimated rate. *)

val run_volts : engine -> float array -> float array
(** Same, with codes converted back to volts. *)

val run_analog : engine -> float array -> float array
(** The LPF output before the ADC, at the simulation rate (for probing). *)

val stages : t -> Attr.t -> (string * Attr.t) list
(** Attribute propagation trace: [(block name, signal after block)] in path
    order, ending at the digital-filter input. *)

val at_filter_input : t -> Attr.t -> Attr.t
(** Final element of {!stages}. *)
