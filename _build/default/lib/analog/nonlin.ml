type t = {
  a1 : float;
  a3 : float;
  a5 : float;
  sat_in : float;   (* monotonicity limit *)
  sat_out : float;  (* |y| at the limit *)
}

let poly t x =
  let x2 = x *. x in
  x *. (t.a1 +. (x2 *. (t.a3 +. (x2 *. t.a5))))

let linear ~gain_lin =
  { a1 = gain_lin; a3 = 0.0; a5 = 0.0; sat_in = infinity; sat_out = infinity }

(* Smallest positive root of dy/dx = a1 + 3 a3 x^2 + 5 a5 x^4 = 0 (quadratic
   in x^2); infinity when the polynomial is monotone. *)
let monotonicity_limit a1 a3 a5 =
  if a5 = 0.0 then begin
    if a3 >= 0.0 then infinity else sqrt (a1 /. (-3.0 *. a3))
  end
  else begin
    let a = 5.0 *. a5 and b = 3.0 *. a3 and c = a1 in
    let disc = (b *. b) -. (4.0 *. a *. c) in
    if disc < 0.0 then infinity
    else begin
      let r1 = ((-.b) +. sqrt disc) /. (2.0 *. a) in
      let r2 = ((-.b) -. sqrt disc) /. (2.0 *. a) in
      let candidates = List.filter (fun r -> r > 0.0) [ r1; r2 ] in
      match candidates with
      | [] -> infinity
      | _ -> sqrt (List.fold_left Float.min infinity candidates)
    end
  end

let fit ~gain_lin ~iip3_vpeak ?p1db_vpeak () =
  assert (gain_lin > 0.0 && iip3_vpeak > 0.0);
  let a1 = gain_lin in
  (* Two-tone IM3 equals the fundamental when each tone reaches A_IP3:
     (3/4) |a3| A^3 = a1 A  =>  a3 = -4 a1 / (3 A^2). *)
  let a3 = -4.0 /. 3.0 *. a1 /. (iip3_vpeak *. iip3_vpeak) in
  let a5 =
    match p1db_vpeak with
    | None -> 0.0
    | Some a ->
      assert (a > 0.0);
      (* First-harmonic gain a1 + 3/4 a3 A^2 + 5/8 a5 A^4 = a1 * 10^(-1/20). *)
      let target = a1 *. Float.pow 10.0 (-1.0 /. 20.0) in
      let a2 = a *. a in
      (target -. a1 -. (0.75 *. a3 *. a2)) /. (0.625 *. a2 *. a2)
  in
  let sat_in = monotonicity_limit a1 a3 a5 in
  let reference = { a1; a3; a5; sat_in; sat_out = infinity } in
  let sat_out = if sat_in = infinity then infinity else Float.abs (poly reference sat_in) in
  { a1; a3; a5; sat_in; sat_out }

let apply t x =
  if Float.abs x >= t.sat_in then (if x >= 0.0 then t.sat_out else -.t.sat_out)
  else poly t x

let gain_lin t = t.a1
let a3 t = t.a3
let a5 t = t.a5
let saturation_input t = t.sat_in

let gain_at_amplitude t amplitude =
  let a2 = amplitude *. amplitude in
  t.a1 +. (0.75 *. t.a3 *. a2) +. (0.625 *. t.a5 *. a2 *. a2)
