(** Shared simulation and analysis context for the analog path. *)

type t = {
  sim_rate_hz : float;      (** Time-domain simulation sample rate. *)
  analysis_bw_hz : float;   (** Bandwidth over which noise powers are
                                 integrated in the attribute domain. *)
  temperature_k : float;
}

val default : t
(** 8 MHz simulation rate, 250 kHz analysis bandwidth, 290 K. *)

val make : ?temperature_k:float -> sim_rate_hz:float -> analysis_bw_hz:float -> unit -> t

val thermal_noise_dbm : t -> float
(** kTB in the analysis bandwidth, dBm. *)

val boltzmann : float
