module I = Msoc_util.Interval
module Units = Msoc_util.Units
module Prng = Msoc_util.Prng
module Attr = Msoc_signal.Attr

type params = {
  gain_db : Param.t;
  iip3_dbm : Param.t;
  dc_offset_v : Param.t;
  nf_db : Param.t;
}

type values = {
  gain_db : float;
  iip3_dbm : float;
  dc_offset_v : float;
  nf_db : float;
}

type instance = {
  nonlin : Nonlin.t;
  dc_offset_v : float;
  noise_sigma_v : float; (* output-referred, at the simulation rate *)
}

let default_params : params =
  { gain_db = Param.make ~nominal:20.0 ~tol:1.0;
    iip3_dbm = Param.make ~nominal:8.0 ~tol:1.5;
    dc_offset_v = Param.make ~nominal:0.0 ~tol:5e-3;
    nf_db = Param.make ~nominal:3.0 ~tol:0.5 }

let nominal_values (p : params) : values =
  { gain_db = p.gain_db.Param.nominal;
    iip3_dbm = p.iip3_dbm.Param.nominal;
    dc_offset_v = p.dc_offset_v.Param.nominal;
    nf_db = p.nf_db.Param.nominal }

let sample_values (p : params) g : values =
  { gain_db = Param.sample p.gain_db g;
    iip3_dbm = Param.sample p.iip3_dbm g;
    dc_offset_v = Param.sample p.dc_offset_v g;
    nf_db = Param.sample p.nf_db g }

(* Output-referred noise sigma for white noise spanning the simulation
   Nyquist band: P = kT * (fs/2) * (F - 1) * G. *)
let noise_sigma ctx ~gain_db ~nf_db =
  let bandwidth = ctx.Context.sim_rate_hz /. 2.0 in
  let factor = Units.power_ratio_of_db nf_db -. 1.0 in
  let gain = Units.power_ratio_of_db gain_db in
  let power = Context.boltzmann *. ctx.Context.temperature_k *. bandwidth *. Float.max 0.0 factor *. gain in
  sqrt (power *. Units.reference_ohms)

let instance ctx (v : values) =
  { nonlin =
      Nonlin.fit
        ~gain_lin:(Units.voltage_ratio_of_db v.gain_db)
        ~iip3_vpeak:(Units.vpeak_of_dbm v.iip3_dbm)
        ();
    dc_offset_v = v.dc_offset_v;
    noise_sigma_v = noise_sigma ctx ~gain_db:v.gain_db ~nf_db:v.nf_db }

let process inst ~rng x =
  Nonlin.apply inst.nonlin x +. inst.dc_offset_v +. (inst.noise_sigma_v *. Prng.gaussian rng)

let saturation_input_v inst = Nonlin.saturation_input inst.nonlin

(* ---- attribute-domain propagation ---- *)

let im3_power gain_i iip3_i tone_power_i =
  (* P_IM3 = 3 P_in - 2 IIP3 + G, every term an interval. *)
  I.add (I.sub (I.scale 3.0 tone_power_i) (I.scale 2.0 iip3_i)) gain_i

let hd3_offset_db = 9.5 (* single-tone HD3 sits ~9.5 dB below two-tone IM3 *)

let friis_noise_dbm ctx ~noise_in_dbm ~gain_db ~nf_db =
  let gain = Units.power_ratio_of_db gain_db in
  let added =
    Context.boltzmann *. ctx.Context.temperature_k *. ctx.Context.analysis_bw_hz
    *. Float.max 0.0 (Units.power_ratio_of_db nf_db -. 1.0)
    *. gain
  in
  Units.dbm_of_watts ((Units.watts_of_dbm noise_in_dbm *. gain) +. added)

let transform (p : params) ctx (s : Attr.t) =
  let gain_i = Param.interval p.gain_db in
  let iip3_i = Param.interval p.iip3_dbm in
  let amplify (tn : Attr.tone) = { tn with Attr.power_dbm = I.add tn.Attr.power_dbm gain_i } in
  let amplified = Attr.map_tones s ~f:amplify in
  (* HD3 per intentional tone. *)
  let with_hd3 =
    List.fold_left
      (fun acc (tn : Attr.tone) ->
        let power =
          I.of_err
            (I.mid (im3_power gain_i iip3_i tn.Attr.power_dbm) -. hd3_offset_db)
            ~err:(I.err (im3_power gain_i iip3_i tn.Attr.power_dbm))
        in
        Attr.add_spur acc (Attr.Harmonic 3)
          { Attr.freq_hz = I.scale 3.0 tn.Attr.freq_hz; power_dbm = power;
            phase_rad = I.point 0.0 })
      amplified s.Attr.tones
  in
  (* IM3 for each unordered pair of intentional tones. *)
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let with_im3 =
    List.fold_left
      (fun acc ((t1 : Attr.tone), (t2 : Attr.tone)) ->
        let weaker =
          if I.mid t1.Attr.power_dbm <= I.mid t2.Attr.power_dbm then t1.Attr.power_dbm
          else t2.Attr.power_dbm
        in
        let power = im3_power gain_i iip3_i weaker in
        let add_product acc freq =
          Attr.add_spur acc Attr.Intermod3
            { Attr.freq_hz = freq; power_dbm = power; phase_rad = I.point 0.0 }
        in
        let f_low = I.sub (I.scale 2.0 t1.Attr.freq_hz) t2.Attr.freq_hz in
        let f_high = I.sub (I.scale 2.0 t2.Attr.freq_hz) t1.Attr.freq_hz in
        add_product (add_product acc f_low) f_high)
      with_hd3
      (pairs s.Attr.tones)
  in
  let gain_v =
    I.map_monotone Units.voltage_ratio_of_db gain_i
  in
  { with_im3 with
    Attr.dc_volts = I.add (I.mul s.Attr.dc_volts gain_v) (Param.interval p.dc_offset_v);
    Attr.noise_dbm =
      friis_noise_dbm ctx ~noise_in_dbm:s.Attr.noise_dbm ~gain_db:p.gain_db.Param.nominal
        ~nf_db:p.nf_db.Param.nominal }
