module I = Msoc_util.Interval
module Units = Msoc_util.Units
module Prng = Msoc_util.Prng

type params = {
  freq_hz : float;
  freq_error_hz : Param.t;
  phase_noise_deg_rms : Param.t;
  drive_dbm : float;
}

type values = {
  freq_hz : float;
  freq_error_hz : float;
  phase_noise_deg_rms : float;
  drive_dbm : float;
}

type osc = {
  step_rad : float;
  sigma_rad : float;
  rho : float;
  rng : Prng.t;
  mutable phase : float;
  mutable wander : float;
}

let default_params ~freq_hz : params =
  { freq_hz;
    freq_error_hz = Param.make ~nominal:0.0 ~tol:200.0;
    phase_noise_deg_rms = Param.make ~nominal:0.03 ~tol:0.01;
    drive_dbm = 7.0 }

let nominal_values (p : params) : values =
  { freq_hz = p.freq_hz;
    freq_error_hz = p.freq_error_hz.Param.nominal;
    phase_noise_deg_rms = p.phase_noise_deg_rms.Param.nominal;
    drive_dbm = p.drive_dbm }

let sample_values (p : params) g : values =
  { freq_hz = p.freq_hz;
    freq_error_hz = Param.sample p.freq_error_hz g;
    phase_noise_deg_rms = Param.sample p.phase_noise_deg_rms g;
    drive_dbm = p.drive_dbm }

let actual_freq_hz (v : values) = v.freq_hz +. v.freq_error_hz

(* Ornstein–Uhlenbeck: wander' = rho wander + sigma sqrt(1-rho^2) xi, which
   is stationary with RMS sigma; rho sets the skirt bandwidth. *)
let create ctx (v : values) ~rng =
  { step_rad = Units.two_pi *. actual_freq_hz v /. ctx.Context.sim_rate_hz;
    sigma_rad = Units.radians_of_degrees v.phase_noise_deg_rms;
    rho = 0.999;
    rng;
    phase = 0.0;
    wander = 0.0 }

let next o =
  let sample = cos (o.phase +. o.wander) in
  o.phase <- Float.rem (o.phase +. o.step_rad) Units.two_pi;
  o.wander <-
    (o.rho *. o.wander)
    +. (o.sigma_rad *. sqrt (1.0 -. (o.rho *. o.rho)) *. Prng.gaussian o.rng);
  sample

let freq_interval_hz (p : params) =
  I.add (I.point p.freq_hz) (Param.interval p.freq_error_hz)
