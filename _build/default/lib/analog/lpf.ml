module I = Msoc_util.Interval
module Units = Msoc_util.Units
module Prng = Msoc_util.Prng
module Attr = Msoc_signal.Attr
module Biquad = Msoc_dsp.Biquad

type params = {
  gain_db : Param.t;
  cutoff_hz : Param.t;
  stopband_db : Param.t;
  clock_hz : float;
  clock_spur_dbc : Param.t;
  nf_db : Param.t;
}

type values = {
  gain_db : float;
  cutoff_hz : float;
  stopband_db : float;
  clock_spur_dbc : float;
  nf_db : float;
}

type instance = {
  sections : Biquad.state array;
  gain_lin : float;
  spur_vpeak : float;
  spur_step_rad : float;
  mutable spur_phase : float;
  noise_sigma_v : float;
}

let default_params ~clock_hz : params =
  { gain_db = Param.make ~nominal:(-2.0) ~tol:0.8;
    cutoff_hz = Param.make ~nominal:200e3 ~tol:12e3;
    stopband_db = Param.make ~nominal:(-60.0) ~tol:4.0;
    clock_hz;
    clock_spur_dbc = Param.make ~nominal:(-70.0) ~tol:5.0;
    nf_db = Param.make ~nominal:12.0 ~tol:1.0 }

let nominal_values (p : params) : values =
  { gain_db = p.gain_db.Param.nominal;
    cutoff_hz = p.cutoff_hz.Param.nominal;
    stopband_db = p.stopband_db.Param.nominal;
    clock_spur_dbc = p.clock_spur_dbc.Param.nominal;
    nf_db = p.nf_db.Param.nominal }

let sample_values (p : params) g : values =
  { gain_db = Param.sample p.gain_db g;
    cutoff_hz = Param.sample p.cutoff_hz g;
    stopband_db = Param.sample p.stopband_db g;
    clock_spur_dbc = Param.sample p.clock_spur_dbc g;
    nf_db = Param.sample p.nf_db g }

let noise_sigma ctx ~gain_db ~nf_db =
  let bandwidth = ctx.Context.sim_rate_hz /. 2.0 in
  let factor = Float.max 0.0 (Units.power_ratio_of_db nf_db -. 1.0) in
  let gain = Units.power_ratio_of_db gain_db in
  sqrt (Context.boltzmann *. ctx.Context.temperature_k *. bandwidth *. factor *. gain
        *. Units.reference_ohms)

let instance ctx ~clock_hz (v : values) =
  let coeffs =
    Biquad.butterworth_lowpass ~sample_rate:ctx.Context.sim_rate_hz ~cutoff:v.cutoff_hz
  in
  (* Spur amplitude referenced to a 0 dBm carrier in the pass band. *)
  let spur_vpeak = Units.vpeak_of_dbm v.clock_spur_dbc in
  { sections = [| Biquad.create coeffs; Biquad.create coeffs |];
    gain_lin = Units.voltage_ratio_of_db v.gain_db;
    spur_vpeak;
    spur_step_rad = Units.two_pi *. clock_hz /. ctx.Context.sim_rate_hz;
    spur_phase = 0.0;
    noise_sigma_v = noise_sigma ctx ~gain_db:v.gain_db ~nf_db:v.nf_db }

let process inst ~rng x =
  let filtered =
    Array.fold_left (fun acc section -> Biquad.process_sample section acc) x inst.sections
  in
  let spur = inst.spur_vpeak *. sin inst.spur_phase in
  inst.spur_phase <- Float.rem (inst.spur_phase +. inst.spur_step_rad) Units.two_pi;
  (inst.gain_lin *. filtered) +. spur +. (inst.noise_sigma_v *. Prng.gaussian rng)

let reset inst =
  Array.iter Biquad.reset inst.sections;
  inst.spur_phase <- 0.0

let magnitude_db (v : values) ctx ~freq =
  let coeffs =
    Biquad.butterworth_lowpass ~sample_rate:ctx.Context.sim_rate_hz ~cutoff:v.cutoff_hz
  in
  let rolloff =
    Biquad.cascade_magnitude_db [ coeffs; coeffs ] ~sample_rate:ctx.Context.sim_rate_hz ~freq
  in
  v.gain_db +. Float.max rolloff v.stopband_db

(* ---- attribute-domain propagation ---- *)

let gain_interval (p : params) ctx ~freq_i =
  (* Corner evaluation over (gain, cutoff, frequency) tolerances: the
     response is monotone in each of them, so corners bound the range. *)
  let corners_cut = [ p.cutoff_hz.Param.nominal -. p.cutoff_hz.Param.tol;
                      p.cutoff_hz.Param.nominal +. p.cutoff_hz.Param.tol ] in
  let corners_gain = [ p.gain_db.Param.nominal -. p.gain_db.Param.tol;
                       p.gain_db.Param.nominal +. p.gain_db.Param.tol ] in
  let corners_freq = [ I.(freq_i.lo); I.(freq_i.hi) ] in
  let values =
    List.concat_map
      (fun cutoff ->
        List.concat_map
          (fun gain ->
            List.map
              (fun freq ->
                magnitude_db
                  { gain_db = gain;
                    cutoff_hz = cutoff;
                    stopband_db = p.stopband_db.Param.nominal;
                    clock_spur_dbc = p.clock_spur_dbc.Param.nominal;
                    nf_db = p.nf_db.Param.nominal }
                  ctx ~freq)
              corners_freq)
          corners_gain)
      corners_cut
  in
  let lo = List.fold_left Float.min infinity values in
  let hi = List.fold_left Float.max neg_infinity values in
  I.make ~lo ~hi

let transform (p : params) ctx (s : Attr.t) =
  let shape (tn : Attr.tone) =
    let g = gain_interval p ctx ~freq_i:tn.Attr.freq_hz in
    { tn with Attr.power_dbm = I.add tn.Attr.power_dbm g }
  in
  let shaped = Attr.map_tones s ~f:shape in
  let with_spur =
    Attr.add_spur shaped Attr.Clock_spur
      { Attr.freq_hz = I.point p.clock_hz;
        power_dbm = Param.interval p.clock_spur_dbc;
        phase_rad = I.point 0.0 }
  in
  let gain = Units.power_ratio_of_db p.gain_db.Param.nominal in
  let added =
    Context.boltzmann *. ctx.Context.temperature_k *. ctx.Context.analysis_bw_hz
    *. Float.max 0.0 (Units.power_ratio_of_db p.nf_db.Param.nominal -. 1.0)
    *. gain
  in
  { with_spur with
    Attr.noise_dbm =
      Units.dbm_of_watts ((Units.watts_of_dbm s.Attr.noise_dbm *. gain) +. added) }
