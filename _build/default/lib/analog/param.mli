(** Toleranced block parameters.

    A defect-free analog parameter "can vary within a range specified by the
    system designer" (§3).  A [Param.t] couples the nominal value with that
    symmetric tolerance; manufacturing instances are drawn from the implied
    normal distribution ([sigma = tol / 3]), and the attribute-domain
    propagation consumes the interval view. *)

type t = { nominal : float; tol : float }
(** [tol] is an absolute, symmetric half-range (same unit as [nominal]). *)

val exact : float -> t
(** Zero-tolerance parameter. *)

val make : nominal:float -> tol:float -> t
(** Requires [tol >= 0]. *)

val interval : t -> Msoc_util.Interval.t
val distribution : t -> Msoc_stat.Distribution.t
(** Normal, [sigma = tol / 3]; degenerate tolerances get a tiny sigma so the
    distribution stays well-defined. *)

val sample : t -> Msoc_util.Prng.t -> float
(** Draw a manufacturing instance, truncated to the tolerance range (a
    defect-free part by construction). *)

val sample_defective : t -> Msoc_util.Prng.t -> severity:float -> float
(** Draw a soft-faulty instance: a deviation of [severity] tolerances is
    added on a random side — "slight deviations in parameter values" (§5). *)

val pp : Format.formatter -> t -> unit
