module I = Msoc_util.Interval
module Units = Msoc_util.Units
module Prng = Msoc_util.Prng
module Attr = Msoc_signal.Attr

type inl_shape = S_curve | Bow

type params = {
  bits : int;
  full_scale_v : float;
  offset_error_v : Param.t;
  inl_lsb : Param.t;
  inl_shape : inl_shape;
  dnl_lsb : Param.t;
  nf_db : Param.t;
}

type values = {
  offset_error_v : float;
  inl_lsb : float;
  dnl_lsb : float;
  nf_db : float;
}

type instance = {
  params : params;
  offset_v : float;
  inl_lsb : float;
  dnl_table : float array; (* per-code additive error, volts *)
  noise_sigma_v : float;
}

let default_params : params =
  { bits = 14;
    full_scale_v = 1.0;
    offset_error_v = Param.make ~nominal:0.0 ~tol:2e-3;
    inl_lsb = Param.make ~nominal:1.5 ~tol:0.75;
    inl_shape = S_curve;
    dnl_lsb = Param.make ~nominal:0.4 ~tol:0.2;
    nf_db = Param.make ~nominal:25.0 ~tol:2.0 }

let nominal_values (p : params) : values =
  { offset_error_v = p.offset_error_v.Param.nominal;
    inl_lsb = p.inl_lsb.Param.nominal;
    dnl_lsb = p.dnl_lsb.Param.nominal;
    nf_db = p.nf_db.Param.nominal }

let sample_values (p : params) g : values =
  { offset_error_v = Param.sample p.offset_error_v g;
    inl_lsb = Param.sample p.inl_lsb g;
    dnl_lsb = Param.sample p.dnl_lsb g;
    nf_db = Param.sample p.nf_db g }

let lsb_volts p = 2.0 *. p.full_scale_v /. float_of_int (1 lsl p.bits)
let code_min p = -(1 lsl (p.bits - 1))
let code_max p = (1 lsl (p.bits - 1)) - 1

let noise_sigma ctx ~nf_db =
  let bandwidth = ctx.Context.sim_rate_hz /. 2.0 in
  let factor = Float.max 0.0 (Units.power_ratio_of_db nf_db -. 1.0) in
  sqrt (Context.boltzmann *. ctx.Context.temperature_k *. bandwidth *. factor
        *. Units.reference_ohms)

let instance params ctx (v : values) ~rng =
  let codes = 1 lsl params.bits in
  let lsb = lsb_volts params in
  let dnl_table =
    Array.init codes (fun _ -> v.dnl_lsb *. lsb *. Prng.gaussian rng /. 3.0)
  in
  { params;
    offset_v = v.offset_error_v;
    inl_lsb = v.inl_lsb;
    dnl_table;
    noise_sigma_v = noise_sigma ctx ~nf_db:v.nf_db }

(* Two smooth INL profiles, both peaking at +/- INL * lsb: the odd
   S-curve puts its distortion at odd harmonics and intermods; the even
   mid-scale bow (the classic second-harmonic-dominant shape the
   code-density test characterises) at even ones. *)
let inl_error inst x =
  let fs = inst.params.full_scale_v in
  let peak = inst.inl_lsb *. lsb_volts inst.params in
  match inst.params.inl_shape with
  | S_curve -> peak *. sin (Float.pi *. x /. (2.0 *. fs))
  | Bow -> peak *. sin (Float.pi *. (x +. fs) /. (2.0 *. fs))

let convert inst ~rng x =
  let p = inst.params in
  let perturbed =
    x +. inst.offset_v +. inl_error inst x +. (inst.noise_sigma_v *. Prng.gaussian rng)
  in
  let code = int_of_float (Float.round (perturbed /. lsb_volts p)) in
  let clamped = max (code_min p) (min (code_max p) code) in
  let index = clamped - code_min p in
  let with_dnl = perturbed +. inst.dnl_table.(index) in
  let code = int_of_float (Float.round (with_dnl /. lsb_volts p)) in
  max (code_min p) (min (code_max p) code)

let capture inst ~decimation ~rng samples =
  assert (decimation >= 1);
  let n = Array.length samples / decimation in
  Array.init n (fun k -> convert inst ~rng samples.(k * decimation))

let code_to_volts p code = float_of_int code *. lsb_volts p

let ideal_snr_db p = (6.02 *. float_of_int p.bits) +. 1.76

(* ---- attribute-domain propagation ---- *)

let alias_fold_interval ~rate i =
  let fold f =
    let r = Float.rem (Float.abs f) rate in
    if r <= rate /. 2.0 then r else rate -. r
  in
  let lo = fold (I.mid i -. I.err i) and hi = fold (I.mid i +. I.err i) in
  I.make ~lo:(Float.min lo hi) ~hi:(Float.max lo hi)

let full_scale_power_dbm p =
  Units.dbm_of_vpeak p.full_scale_v

let transform (p : params) ~adc_rate_hz ctx (s : Attr.t) =
  let fold (tn : Attr.tone) =
    { tn with Attr.freq_hz = alias_fold_interval ~rate:adc_rate_hz tn.Attr.freq_hz }
  in
  let folded = Attr.map_tones s ~f:fold in
  (* Quantization noise relative to full scale, plus thermal noise. *)
  let quant_dbm = full_scale_power_dbm p -. ideal_snr_db p in
  let thermal_dbm =
    Units.dbm_of_watts
      (Context.boltzmann *. ctx.Context.temperature_k *. ctx.Context.analysis_bw_hz
      *. Float.max 1.0 (Units.power_ratio_of_db p.nf_db.Param.nominal))
  in
  let noise_w =
    Units.watts_of_dbm s.Attr.noise_dbm
    +. Units.watts_of_dbm quant_dbm
    +. Units.watts_of_dbm thermal_dbm
  in
  (* INL-induced even-order intermodulation of tone pairs: the mid-scale
     bow produces products at f1 +/- f2. *)
  let spur_dbc_of inl_lsb =
    20.0 *. Float.log10 (Float.max 1e-6 inl_lsb /. float_of_int (1 lsl p.bits)) +. 6.0
  in
  let folded_with_im2 =
    let rec pairs = function
      | [] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    List.fold_left
      (fun acc ((t1 : Attr.tone), (t2 : Attr.tone)) ->
        let stronger =
          if I.mid t1.Attr.power_dbm >= I.mid t2.Attr.power_dbm then t1.Attr.power_dbm
          else t2.Attr.power_dbm
        in
        let dbc = spur_dbc_of p.inl_lsb.Param.nominal in
        let add acc freq_i =
          Attr.add_spur acc Attr.Intermod3
            { Attr.freq_hz = alias_fold_interval ~rate:adc_rate_hz freq_i;
              power_dbm = I.of_err (I.mid stronger +. dbc) ~err:(I.err stronger +. 3.0);
              phase_rad = I.point 0.0 }
        in
        add (add acc (I.add t1.Attr.freq_hz t2.Attr.freq_hz))
          (I.sub t2.Attr.freq_hz t1.Attr.freq_hz))
      folded
      (pairs folded.Attr.tones)
  in
  let folded = match p.inl_shape with Bow -> folded_with_im2 | S_curve -> folded in
  (* INL-induced harmonics of the strongest intentional tone. *)
  let with_harmonics =
    match
      List.fold_left
        (fun best (tn : Attr.tone) ->
          match best with
          | None -> Some tn
          | Some b -> if I.mid tn.Attr.power_dbm > I.mid b.Attr.power_dbm then Some tn else best)
        None folded.Attr.tones
    with
    | None -> folded
    | Some carrier ->
      (* Empirical INL spur law: HDk ~ carrier + 20 log10(INL / 2^bits) + margin. *)
      let spur_dbc inl_lsb =
        20.0 *. Float.log10 (Float.max 1e-6 inl_lsb /. float_of_int (1 lsl p.bits)) +. 6.0
      in
      let inl_i = Param.interval p.inl_lsb in
      let dbc_i =
        I.make
          ~lo:(spur_dbc (Float.max 1e-6 I.(inl_i.lo)))
          ~hi:(spur_dbc (Float.max 1e-6 I.(inl_i.hi)))
      in
      List.fold_left
        (fun acc harmonic ->
          Attr.add_spur acc (Attr.Harmonic harmonic)
            { Attr.freq_hz =
                alias_fold_interval ~rate:adc_rate_hz
                  (I.scale (float_of_int harmonic) carrier.Attr.freq_hz);
              power_dbm = I.add carrier.Attr.power_dbm dbc_i;
              phase_rad = I.point 0.0 })
        folded [ 2; 3 ]
  in
  { with_harmonics with
    Attr.dc_volts = I.add with_harmonics.Attr.dc_volts (Param.interval p.offset_error_v);
    Attr.noise_dbm = Units.dbm_of_watts noise_w }
