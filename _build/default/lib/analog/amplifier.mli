(** Low-noise amplifier block (paper Table 1: Gain, IIP3, DC Offset, 3rd
    Order Harmonic; we additionally carry a noise figure so Friis
    composition is exercised). *)

module Attr = Msoc_signal.Attr

type params = {
  gain_db : Param.t;
  iip3_dbm : Param.t;
  dc_offset_v : Param.t;
  nf_db : Param.t;
}

type values = {
  gain_db : float;
  iip3_dbm : float;
  dc_offset_v : float;
  nf_db : float;
}

type instance

val default_params : params
(** 20 dB ± 1 dB gain, +8 dBm ± 1.5 dB IIP3, 0 ± 5 mV offset,
    3 dB ± 0.5 dB NF. *)

val nominal_values : params -> values
val sample_values : params -> Msoc_util.Prng.t -> values
(** Defect-free manufacturing instance. *)

val instance : Context.t -> values -> instance
(** Fit the behavioural model (cubic nonlinearity, output noise sigma). *)

val process : instance -> rng:Msoc_util.Prng.t -> float -> float
(** One input sample (volts) to one output sample. *)

val saturation_input_v : instance -> float
(** Input peak voltage where the block hard-saturates. *)

val transform : params -> Context.t -> Attr.t -> Attr.t
(** Attribute-domain propagation with tolerance intervals: gain on every
    tone and spur, HD3 spur per tone, IM3 spurs for tone pairs, DC offset,
    Friis noise update. *)
