type t = {
  sim_rate_hz : float;
  analysis_bw_hz : float;
  temperature_k : float;
}

let boltzmann = 1.380649e-23

let make ?(temperature_k = 290.0) ~sim_rate_hz ~analysis_bw_hz () =
  assert (sim_rate_hz > 0.0 && analysis_bw_hz > 0.0 && temperature_k > 0.0);
  { sim_rate_hz; analysis_bw_hz; temperature_k }

let default = make ~sim_rate_hz:8e6 ~analysis_bw_hz:250e3 ()

let thermal_noise_dbm t =
  Msoc_util.Units.dbm_of_watts (boltzmann *. t.temperature_k *. t.analysis_bw_hz)
