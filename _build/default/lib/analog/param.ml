module I = Msoc_util.Interval
module Prng = Msoc_util.Prng
module Distribution = Msoc_stat.Distribution

type t = { nominal : float; tol : float }

let exact nominal = { nominal; tol = 0.0 }

let make ~nominal ~tol =
  assert (tol >= 0.0);
  { nominal; tol }

let interval p = I.of_err p.nominal ~err:p.tol

let effective_sigma p =
  if p.tol > 0.0 then p.tol /. 3.0
  else Float.max (Float.abs p.nominal *. 1e-9) 1e-12

let distribution p = Distribution.normal ~mean:p.nominal ~sigma:(effective_sigma p)

let sample p g =
  if p.tol = 0.0 then p.nominal
  else begin
    let rec draw attempts =
      let v = Prng.gaussian_scaled g ~mean:p.nominal ~sigma:(p.tol /. 3.0) in
      if Float.abs (v -. p.nominal) <= p.tol || attempts > 20 then v else draw (attempts + 1)
    in
    draw 0
  end

let sample_defective p g ~severity =
  let base = sample p g in
  let magnitude = if p.tol > 0.0 then p.tol else Float.max (Float.abs p.nominal *. 0.01) 1e-9 in
  let side = if Prng.float g < 0.5 then -1.0 else 1.0 in
  base +. (side *. severity *. magnitude)

let pp ppf p = Format.fprintf ppf "%g ± %g" p.nominal p.tol
