(** Switched-capacitor low-pass (channel-select) filter (paper Table 1:
    pass-band gain, stop-band gain, cut-off frequency, dynamic range).

    Waveform model: two cascaded 2nd-order Butterworth sections at the
    instance's cut-off, times the pass-band gain, plus the clock spur the
    paper calls out for switched-capacitor filters ("tones at the integer
    multiples of the clock frequency") and output noise. *)

module Attr = Msoc_signal.Attr

type params = {
  gain_db : Param.t;           (** Pass-band gain. *)
  cutoff_hz : Param.t;
  stopband_db : Param.t;       (** Floor of the attenuation (negative dB,
                                   relative to pass band). *)
  clock_hz : float;
  clock_spur_dbc : Param.t;    (** Clock feedthrough relative to a 0 dBm
                                   pass-band carrier, negative dB. *)
  nf_db : Param.t;
}

type values = {
  gain_db : float;
  cutoff_hz : float;
  stopband_db : float;
  clock_spur_dbc : float;
  nf_db : float;
}

type instance

val default_params : clock_hz:float -> params
(** -2 dB ± 0.8 dB gain, 200 kHz ± 6% cut-off, -60 dB ± 4 dB stop band,
    -70 dBm ± 5 dB clock spur, 12 dB ± 1 dB NF. *)

val nominal_values : params -> values
val sample_values : params -> Msoc_util.Prng.t -> values
val instance : Context.t -> clock_hz:float -> values -> instance
val process : instance -> rng:Msoc_util.Prng.t -> float -> float
(** Stateful: one input sample to one output sample at the simulation rate. *)

val reset : instance -> unit

val magnitude_db : values -> Context.t -> freq:float -> float
(** Small-signal gain at a frequency, floored at the stop-band level —
    shared by the waveform model's validation and the attribute transform. *)

val transform : params -> Context.t -> Attr.t -> Attr.t
(** Attribute propagation: per-tone gain interval from corner evaluation of
    (gain, cutoff) tolerances, clock spur insertion, noise update. *)
