(** Local oscillator (paper Table 1: Frequency Error, Phase Noise).

    The waveform model is a unit-amplitude cosine whose phase advances at
    the (error-afflicted) carrier rate plus an Ornstein–Uhlenbeck phase
    perturbation — a stationary close-in phase-noise skirt whose RMS equals
    the specified value. *)

type params = {
  freq_hz : float;              (** Nominal carrier. *)
  freq_error_hz : Param.t;      (** Additive frequency error (nominal 0). *)
  phase_noise_deg_rms : Param.t;
  drive_dbm : float;            (** LO drive power (sets mixer leakage). *)
}

type values = {
  freq_hz : float;
  freq_error_hz : float;
  phase_noise_deg_rms : float;
  drive_dbm : float;
}

type osc
(** Stateful waveform generator. *)

val default_params : freq_hz:float -> params
(** ±200 Hz frequency error, 0.03° ± 0.01° RMS phase noise, +7 dBm drive. *)

val nominal_values : params -> values
val sample_values : params -> Msoc_util.Prng.t -> values

val create : Context.t -> values -> rng:Msoc_util.Prng.t -> osc
val next : osc -> float
(** Next unit-amplitude LO sample (advances time by one simulation step). *)

val actual_freq_hz : values -> float

val freq_interval_hz : params -> Msoc_util.Interval.t
(** Carrier frequency with its error tolerance. *)
