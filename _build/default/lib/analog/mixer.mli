(** Down-conversion mixer (paper Table 1: Gain, IIP3, LO Isolation, NF,
    1 dB Compression Point). *)

module Attr = Msoc_signal.Attr

type params = {
  gain_db : Param.t;        (** Conversion gain. *)
  iip3_dbm : Param.t;
  lo_isolation_db : Param.t; (** LO-to-output isolation (positive dB). *)
  nf_db : Param.t;
  p1db_dbm : Param.t;       (** Input-referred 1 dB compression point. *)
}

type values = {
  gain_db : float;
  iip3_dbm : float;
  lo_isolation_db : float;
  nf_db : float;
  p1db_dbm : float;
}

type instance

val default_params : params
(** 8 dB ± 1 dB conversion gain, +14 dBm ± 1.5 dB IIP3, 40 dB ± 3 dB LO
    isolation, 10 dB ± 1 dB NF, +2 dBm ± 1 dB P1dB. *)

val nominal_values : params -> values
val sample_values : params -> Msoc_util.Prng.t -> values
val instance : Context.t -> values -> lo_drive_dbm:float -> instance

val process : instance -> rng:Msoc_util.Prng.t -> lo:float -> float -> float
(** One sample: the nonlinearly-processed input is multiplied by the LO
    sample (doubled so the difference-frequency component carries the full
    conversion gain) plus LO feedthrough and noise. *)

val saturation_input_v : instance -> float

val transform :
  params -> lo:Local_osc.params -> Context.t -> Attr.t -> Attr.t
(** Attribute propagation: every tone/spur is translated to
    [|f - f_lo|] with the LO frequency-error interval folded into the
    frequency accuracy, conversion gain applied, IM3 spurs added, the LO
    leakage spur inserted, and noise updated via Friis. *)
