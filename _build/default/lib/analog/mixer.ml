module I = Msoc_util.Interval
module Units = Msoc_util.Units
module Prng = Msoc_util.Prng
module Attr = Msoc_signal.Attr

type params = {
  gain_db : Param.t;
  iip3_dbm : Param.t;
  lo_isolation_db : Param.t;
  nf_db : Param.t;
  p1db_dbm : Param.t;
}

type values = {
  gain_db : float;
  iip3_dbm : float;
  lo_isolation_db : float;
  nf_db : float;
  p1db_dbm : float;
}

type instance = {
  nonlin : Nonlin.t;
  leak_vpeak : float;
  noise_sigma_v : float;
}

let default_params : params =
  { gain_db = Param.make ~nominal:8.0 ~tol:1.0;
    iip3_dbm = Param.make ~nominal:14.0 ~tol:1.5;
    lo_isolation_db = Param.make ~nominal:40.0 ~tol:3.0;
    nf_db = Param.make ~nominal:10.0 ~tol:1.0;
    p1db_dbm = Param.make ~nominal:2.0 ~tol:1.0 }

let nominal_values (p : params) : values =
  { gain_db = p.gain_db.Param.nominal;
    iip3_dbm = p.iip3_dbm.Param.nominal;
    lo_isolation_db = p.lo_isolation_db.Param.nominal;
    nf_db = p.nf_db.Param.nominal;
    p1db_dbm = p.p1db_dbm.Param.nominal }

let sample_values (p : params) g : values =
  { gain_db = Param.sample p.gain_db g;
    iip3_dbm = Param.sample p.iip3_dbm g;
    lo_isolation_db = Param.sample p.lo_isolation_db g;
    nf_db = Param.sample p.nf_db g;
    p1db_dbm = Param.sample p.p1db_dbm g }

let noise_sigma ctx ~gain_db ~nf_db =
  let bandwidth = ctx.Context.sim_rate_hz /. 2.0 in
  let factor = Float.max 0.0 (Units.power_ratio_of_db nf_db -. 1.0) in
  let gain = Units.power_ratio_of_db gain_db in
  sqrt (Context.boltzmann *. ctx.Context.temperature_k *. bandwidth *. factor *. gain
        *. Units.reference_ohms)

let instance ctx (v : values) ~lo_drive_dbm =
  { nonlin =
      Nonlin.fit
        ~gain_lin:(Units.voltage_ratio_of_db v.gain_db)
        ~iip3_vpeak:(Units.vpeak_of_dbm v.iip3_dbm)
        ~p1db_vpeak:(Units.vpeak_of_dbm v.p1db_dbm)
        ();
    leak_vpeak = Units.vpeak_of_dbm (lo_drive_dbm -. v.lo_isolation_db);
    noise_sigma_v = noise_sigma ctx ~gain_db:v.gain_db ~nf_db:v.nf_db }

let process inst ~rng ~lo x =
  (2.0 *. Nonlin.apply inst.nonlin x *. lo)
  +. (inst.leak_vpeak *. lo)
  +. (inst.noise_sigma_v *. Prng.gaussian rng)

let saturation_input_v inst = Nonlin.saturation_input inst.nonlin

(* ---- attribute-domain propagation ---- *)

let abs_interval (i : I.t) =
  let lo = i.I.lo and hi = i.I.hi in
  if lo >= 0.0 then i
  else if hi <= 0.0 then I.neg i
  else I.make ~lo:0.0 ~hi:(Float.max (-.lo) hi)

let im3_power gain_i iip3_i p = I.add (I.sub (I.scale 3.0 p) (I.scale 2.0 iip3_i)) gain_i

let transform (p : params) ~(lo : Local_osc.params) ctx (s : Attr.t) =
  let gain_i = Param.interval p.gain_db in
  let iip3_i = Param.interval p.iip3_dbm in
  let f_lo = Local_osc.freq_interval_hz lo in
  let translate (tn : Attr.tone) =
    { Attr.freq_hz = abs_interval (I.sub tn.Attr.freq_hz f_lo);
      power_dbm = I.add tn.Attr.power_dbm gain_i;
      phase_rad =
        I.of_err (I.mid tn.Attr.phase_rad)
          ~err:
            (I.err tn.Attr.phase_rad
            +. Units.radians_of_degrees lo.Local_osc.phase_noise_deg_rms.Param.nominal) }
  in
  let translated = Attr.map_tones s ~f:translate in
  (* IM3 products of the translated tone pairs. *)
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let translated_tones = translated.Attr.tones in
  let with_im3 =
    List.fold_left
      (fun acc ((t1 : Attr.tone), (t2 : Attr.tone)) ->
        (* Tone powers here are already post-gain; refer back to input. *)
        let input_power tone = I.sub tone.Attr.power_dbm gain_i in
        let weaker =
          if I.mid t1.Attr.power_dbm <= I.mid t2.Attr.power_dbm then input_power t1
          else input_power t2
        in
        let power = im3_power gain_i iip3_i weaker in
        let add acc freq =
          Attr.add_spur acc Attr.Intermod3
            { Attr.freq_hz = abs_interval freq; power_dbm = power; phase_rad = I.point 0.0 }
        in
        let f1 = t1.Attr.freq_hz and f2 = t2.Attr.freq_hz in
        add (add acc (I.sub (I.scale 2.0 f1) f2)) (I.sub (I.scale 2.0 f2) f1))
      translated (pairs translated_tones)
  in
  (* LO leakage spur at the LO frequency. *)
  let leak_power = I.sub (I.point lo.Local_osc.drive_dbm) (Param.interval p.lo_isolation_db) in
  let with_leak =
    Attr.add_spur with_im3 Attr.Lo_leakage
      { Attr.freq_hz = f_lo; power_dbm = leak_power; phase_rad = I.point 0.0 }
  in
  let gain = Units.power_ratio_of_db p.gain_db.Param.nominal in
  let added =
    Context.boltzmann *. ctx.Context.temperature_k *. ctx.Context.analysis_bw_hz
    *. Float.max 0.0 (Units.power_ratio_of_db p.nf_db.Param.nominal -. 1.0)
    *. gain
  in
  (* The LO phase-noise skirt scatters a fraction phi_rms^2 of every carried
     tone's power into the noise floor. *)
  let phi_rms =
    Units.radians_of_degrees lo.Local_osc.phase_noise_deg_rms.Param.nominal
  in
  let skirt =
    List.fold_left
      (fun acc (tn : Attr.tone) ->
        acc +. (Units.watts_of_dbm (I.mid tn.Attr.power_dbm) *. phi_rms *. phi_rms))
      0.0 translated_tones
  in
  { with_leak with
    Attr.noise_dbm =
      Units.dbm_of_watts ((Units.watts_of_dbm s.Attr.noise_dbm *. gain) +. added +. skirt) }
