module I = Msoc_util.Interval
module Prng = Msoc_util.Prng
module Attr = Msoc_signal.Attr

type t = {
  ctx : Context.t;
  amp : Amplifier.params;
  lo : Local_osc.params;
  mixer : Mixer.params;
  lpf : Lpf.params;
  adc : Adc.params;
  adc_decimation : int;
}

type part = {
  amp_v : Amplifier.values;
  lo_v : Local_osc.values;
  mixer_v : Mixer.values;
  lpf_v : Lpf.values;
  adc_v : Adc.values;
}

let default_receiver () =
  let ctx = Context.default in
  { ctx;
    amp = Amplifier.default_params;
    lo = Local_osc.default_params ~freq_hz:1e6;
    mixer = Mixer.default_params;
    lpf = Lpf.default_params ~clock_hz:3.3e6;
    adc = Adc.default_params;
    adc_decimation = 8 }

let adc_rate_hz t = t.ctx.Context.sim_rate_hz /. float_of_int t.adc_decimation

let nominal_part t =
  { amp_v = Amplifier.nominal_values t.amp;
    lo_v = Local_osc.nominal_values t.lo;
    mixer_v = Mixer.nominal_values t.mixer;
    lpf_v = Lpf.nominal_values t.lpf;
    adc_v = Adc.nominal_values t.adc }

let sample_part t g =
  { amp_v = Amplifier.sample_values t.amp g;
    lo_v = Local_osc.sample_values t.lo g;
    mixer_v = Mixer.sample_values t.mixer g;
    lpf_v = Lpf.sample_values t.lpf g;
    adc_v = Adc.sample_values t.adc g }

let nominal_path_gain_db t =
  t.amp.Amplifier.gain_db.Param.nominal
  +. t.mixer.Mixer.gain_db.Param.nominal
  +. t.lpf.Lpf.gain_db.Param.nominal

let path_gain_interval_db t =
  I.add
    (Param.interval t.amp.Amplifier.gain_db)
    (I.add (Param.interval t.mixer.Mixer.gain_db) (Param.interval t.lpf.Lpf.gain_db))

type engine = {
  spec : t;
  amp_i : Amplifier.instance;
  lo_osc : Local_osc.osc;
  mixer_i : Mixer.instance;
  lpf_i : Lpf.instance;
  adc_i : Adc.instance;
  amp_rng : Prng.t;
  mixer_rng : Prng.t;
  lpf_rng : Prng.t;
  adc_rng : Prng.t;
}

let engine t part ~seed =
  let root = Prng.create seed in
  let amp_rng = Prng.split root in
  let lo_rng = Prng.split root in
  let mixer_rng = Prng.split root in
  let lpf_rng = Prng.split root in
  let adc_build_rng = Prng.split root in
  let adc_rng = Prng.split root in
  { spec = t;
    amp_i = Amplifier.instance t.ctx part.amp_v;
    lo_osc = Local_osc.create t.ctx part.lo_v ~rng:lo_rng;
    mixer_i = Mixer.instance t.ctx part.mixer_v ~lo_drive_dbm:t.lo.Local_osc.drive_dbm;
    lpf_i = Lpf.instance t.ctx ~clock_hz:t.lpf.Lpf.clock_hz part.lpf_v;
    adc_i = Adc.instance t.adc t.ctx part.adc_v ~rng:adc_build_rng;
    amp_rng;
    mixer_rng;
    lpf_rng;
    adc_rng }

let run_analog e input =
  Lpf.reset e.lpf_i;
  Array.map
    (fun x ->
      let amplified = Amplifier.process e.amp_i ~rng:e.amp_rng x in
      let lo = Local_osc.next e.lo_osc in
      let mixed = Mixer.process e.mixer_i ~rng:e.mixer_rng ~lo amplified in
      Lpf.process e.lpf_i ~rng:e.lpf_rng mixed)
    input

let run_codes e input =
  let analog = run_analog e input in
  Adc.capture e.adc_i ~decimation:e.spec.adc_decimation ~rng:e.adc_rng analog

let run_volts e input =
  Array.map (Adc.code_to_volts e.spec.adc) (run_codes e input)

let stages t signal =
  let after_amp = Amplifier.transform t.amp t.ctx signal in
  let after_mixer = Mixer.transform t.mixer ~lo:t.lo t.ctx after_amp in
  let after_lpf = Lpf.transform t.lpf t.ctx after_mixer in
  let after_adc = Adc.transform t.adc ~adc_rate_hz:(adc_rate_hz t) t.ctx after_lpf in
  [ ("amp", after_amp); ("mixer", after_mixer); ("lpf", after_lpf); ("adc", after_adc) ]

let at_filter_input t signal =
  match List.rev (stages t signal) with
  | (_, last) :: _ -> last
  | [] -> signal
