lib/analog/amplifier.ml: Context Float List Msoc_signal Msoc_util Nonlin Param
