lib/analog/param.ml: Float Format Msoc_stat Msoc_util
