lib/analog/nonlin.ml: Float List
