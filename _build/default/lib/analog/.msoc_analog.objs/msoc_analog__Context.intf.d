lib/analog/context.mli:
