lib/analog/mixer.mli: Context Local_osc Msoc_signal Msoc_util Param
