lib/analog/path.ml: Adc Amplifier Array Context List Local_osc Lpf Mixer Msoc_signal Msoc_util Param
