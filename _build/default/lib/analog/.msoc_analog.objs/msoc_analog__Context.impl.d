lib/analog/context.ml: Msoc_util
