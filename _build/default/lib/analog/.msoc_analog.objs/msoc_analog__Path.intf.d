lib/analog/path.mli: Adc Amplifier Context Local_osc Lpf Mixer Msoc_signal Msoc_util
