lib/analog/mixer.ml: Context Float List Local_osc Msoc_signal Msoc_util Nonlin Param
