lib/analog/param.mli: Format Msoc_stat Msoc_util
