lib/analog/sigma_delta.ml: Array Context Float Msoc_dsp Msoc_util Param
