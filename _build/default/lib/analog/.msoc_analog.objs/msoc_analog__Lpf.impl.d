lib/analog/lpf.ml: Array Context Float List Msoc_dsp Msoc_signal Msoc_util Param
