lib/analog/adc.ml: Array Context Float List Msoc_signal Msoc_util Param
