lib/analog/amplifier.mli: Context Msoc_signal Msoc_util Param
