lib/analog/adc.mli: Context Msoc_signal Msoc_util Param
