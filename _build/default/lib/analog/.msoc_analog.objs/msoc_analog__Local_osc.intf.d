lib/analog/local_osc.mli: Context Msoc_util Param
