lib/analog/local_osc.ml: Context Float Msoc_util Param
