lib/analog/nonlin.mli:
