lib/analog/sigma_delta.mli: Context Msoc_util Param
