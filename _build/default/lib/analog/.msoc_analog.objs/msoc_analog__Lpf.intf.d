lib/analog/lpf.mli: Context Msoc_signal Msoc_util Param
