(** Memoryless polynomial nonlinearity fitted to RF specifications.

    [y = a1 x + a3 x^3 + a5 x^5], where [a3] is chosen so that the two-tone
    third-order intercept extrapolates to the specified IIP3 and, when a
    compression point is given, [a5] is chosen so that the gain has dropped
    exactly 1 dB at the specified P1dB input amplitude.  Outside the region
    where the polynomial is monotone the output is clamped (hard
    saturation), which reproduces the paper's Fig. 3 failure mode. *)

type t

val linear : gain_lin:float -> t
(** Distortion-free (used for ideal-path simulations). *)

val fit : gain_lin:float -> iip3_vpeak:float -> ?p1db_vpeak:float -> unit -> t
(** Requires positive gain and amplitudes.  Without [p1db_vpeak] the cubic
    alone sets compression (P1dB at IIP3 - 9.6 dB). *)

val apply : t -> float -> float
val gain_lin : t -> float
val a3 : t -> float
val a5 : t -> float

val saturation_input : t -> float
(** Input amplitude beyond which the output is clamped; [infinity] for a
    purely linear instance. *)

val gain_at_amplitude : t -> float -> float
(** Describing-function (first-harmonic) gain at a sine input amplitude:
    [a1 + 3/4 a3 A^2 + 5/8 a5 A^4], clamped region excluded. *)
