(** The paper's signal-attribute model.

    §4: "signal propagation is enabled through tracking amplitude, frequency,
    phase, DC level, noise level, and accuracy of signals as modules are
    traversed."  Every attribute that tolerances make uncertain is carried as
    an interval ({!Msoc_util.Interval.t}); the interval width {e is} the
    accuracy.  Spurs (harmonics, LO leakage, clock feedthrough,
    intermodulation products) are tracked as labelled tones so that the
    coverage analysis can tell fault-induced distortion from the distortion
    the defect-free analog path already produces. *)

module I = Msoc_util.Interval

type spur_origin =
  | Harmonic of int          (** n-th harmonic of a carried tone. *)
  | Intermod3                (** Third-order intermodulation product. *)
  | Lo_leakage               (** Mixer LO feedthrough. *)
  | Clock_spur               (** Switched-capacitor clock image. *)
  | Alias                    (** Sampling image from the ADC. *)

type tone = {
  freq_hz : I.t;
  power_dbm : I.t;
  phase_rad : I.t;
}

type spur = { origin : spur_origin; tone : tone }

type t = {
  tones : tone list;        (** Intentional test tones. *)
  spurs : spur list;        (** Non-ideal content of the defect-free path. *)
  dc_volts : I.t;           (** DC level. *)
  noise_dbm : float;        (** Integrated noise power in the analysis band. *)
}

val tone : ?phase_rad:float -> freq_hz:float -> power_dbm:float -> unit -> tone
(** Exact (zero-accuracy-loss) tone. *)

val silence : ?noise_dbm:float -> unit -> t
(** No tones; default noise floor -174 dBm (thermal, 1 Hz). *)

val of_tones : ?noise_dbm:float -> ?dc_volts:float -> tone list -> t
val single_tone : ?noise_dbm:float -> freq_hz:float -> power_dbm:float -> unit -> t
val two_tone :
  ?noise_dbm:float -> f1_hz:float -> f2_hz:float -> power_dbm:float -> unit -> t
(** Equal per-tone power. *)

val tone_near : t -> freq_hz:float -> within_hz:float -> tone option
(** Strongest intentional tone within [within_hz] of the frequency. *)

val spur_near : t -> freq_hz:float -> within_hz:float -> spur option
val total_tone_power_dbm : t -> float
(** Nominal sum of intentional tone powers; -400 when there are none. *)

val snr_db : t -> I.t
(** Total intentional tone power over noise (interval from power accuracy). *)

val worst_spur_dbm : t -> float
(** Nominal power of the strongest spur; -400 when there are none. *)

val sfdr_db : t -> float
(** Nominal strongest tone over strongest spur. *)

val freq_accuracy_hz : tone -> float
val power_accuracy_db : tone -> float

val add_spur : t -> spur_origin -> tone -> t
val map_tones : t -> f:(tone -> tone) -> t
(** Apply to intentional tones and spur tones alike. *)

val waveform : t -> sample_rate:float -> samples:int -> rng:Msoc_util.Prng.t -> float array
(** Synthesize a nominal time-domain realisation: interval midpoints for
    tone and spur parameters, white Gaussian noise at the tracked power,
    plus the DC level.  Amplitudes are peak volts derived from dBm into the
    reference impedance. *)

val pp : Format.formatter -> t -> unit
