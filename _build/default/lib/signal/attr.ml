module I = Msoc_util.Interval
module Units = Msoc_util.Units
module Prng = Msoc_util.Prng

type spur_origin =
  | Harmonic of int
  | Intermod3
  | Lo_leakage
  | Clock_spur
  | Alias

type tone = {
  freq_hz : I.t;
  power_dbm : I.t;
  phase_rad : I.t;
}

type spur = { origin : spur_origin; tone : tone }

type t = {
  tones : tone list;
  spurs : spur list;
  dc_volts : I.t;
  noise_dbm : float;
}

let thermal_floor_dbm = -174.0

let tone ?(phase_rad = 0.0) ~freq_hz ~power_dbm () =
  { freq_hz = I.point freq_hz; power_dbm = I.point power_dbm; phase_rad = I.point phase_rad }

let silence ?(noise_dbm = thermal_floor_dbm) () =
  { tones = []; spurs = []; dc_volts = I.point 0.0; noise_dbm }

let of_tones ?(noise_dbm = thermal_floor_dbm) ?(dc_volts = 0.0) tones =
  { tones; spurs = []; dc_volts = I.point dc_volts; noise_dbm }

let single_tone ?noise_dbm ~freq_hz ~power_dbm () =
  of_tones ?noise_dbm [ tone ~freq_hz ~power_dbm () ]

let two_tone ?noise_dbm ~f1_hz ~f2_hz ~power_dbm () =
  of_tones ?noise_dbm
    [ tone ~freq_hz:f1_hz ~power_dbm (); tone ~freq_hz:f2_hz ~power_dbm () ]

let strongest candidates =
  List.fold_left
    (fun best candidate ->
      match best with
      | None -> Some candidate
      | Some b ->
        if I.mid candidate.power_dbm > I.mid b.power_dbm then Some candidate else best)
    None candidates

let tone_near t ~freq_hz ~within_hz =
  strongest
    (List.filter (fun tn -> Float.abs (I.mid tn.freq_hz -. freq_hz) <= within_hz) t.tones)

let spur_near t ~freq_hz ~within_hz =
  let close s = Float.abs (I.mid s.tone.freq_hz -. freq_hz) <= within_hz in
  List.fold_left
    (fun best s ->
      if not (close s) then best
      else begin
        match best with
        | None -> Some s
        | Some b -> if I.mid s.tone.power_dbm > I.mid b.tone.power_dbm then Some s else best
      end)
    None t.spurs

let sum_power_dbm tones =
  match tones with
  | [] -> -400.0
  | _ ->
    let watts =
      List.fold_left (fun acc tn -> acc +. Units.watts_of_dbm (I.mid tn.power_dbm)) 0.0 tones
    in
    Units.dbm_of_watts watts

let total_tone_power_dbm t = sum_power_dbm t.tones

let snr_db t =
  match t.tones with
  | [] -> I.point (-400.0)
  | _ ->
    let err =
      List.fold_left (fun acc tn -> Float.max acc (I.err tn.power_dbm)) 0.0 t.tones
    in
    I.of_err (total_tone_power_dbm t -. t.noise_dbm) ~err

let worst_spur_dbm t =
  match strongest (List.map (fun s -> s.tone) t.spurs) with
  | None -> -400.0
  | Some tn -> I.mid tn.power_dbm

let sfdr_db t =
  match strongest t.tones with
  | None -> 0.0
  | Some tn -> I.mid tn.power_dbm -. worst_spur_dbm t

let freq_accuracy_hz tn = I.err tn.freq_hz
let power_accuracy_db tn = I.err tn.power_dbm
let add_spur t origin tone = { t with spurs = { origin; tone } :: t.spurs }

let map_tones t ~f =
  { t with
    tones = List.map f t.tones;
    spurs = List.map (fun s -> { s with tone = f s.tone }) t.spurs }

let waveform t ~sample_rate ~samples ~rng =
  let components =
    List.map (fun tn -> tn) t.tones @ List.map (fun s -> s.tone) t.spurs
  in
  let dc = I.mid t.dc_volts in
  let noise_vrms = Units.vrms_of_dbm t.noise_dbm in
  Array.init samples (fun n ->
      let time = float_of_int n /. sample_rate in
      let deterministic =
        List.fold_left
          (fun acc tn ->
            let amplitude = Units.vpeak_of_dbm (I.mid tn.power_dbm) in
            let freq = I.mid tn.freq_hz and phase = I.mid tn.phase_rad in
            acc +. (amplitude *. sin ((Units.two_pi *. freq *. time) +. phase)))
          dc components
      in
      deterministic +. (noise_vrms *. Prng.gaussian rng))

let pp_origin ppf = function
  | Harmonic n -> Format.fprintf ppf "H%d" n
  | Intermod3 -> Format.pp_print_string ppf "IM3"
  | Lo_leakage -> Format.pp_print_string ppf "LO"
  | Clock_spur -> Format.pp_print_string ppf "CLK"
  | Alias -> Format.pp_print_string ppf "ALIAS"

let pp ppf t =
  let pp_tone ppf tn =
    Format.fprintf ppf "%.4g Hz @ %.2f dBm (±%.2g Hz, ±%.2g dB)" (I.mid tn.freq_hz)
      (I.mid tn.power_dbm) (I.err tn.freq_hz) (I.err tn.power_dbm)
  in
  Format.fprintf ppf "@[<v>tones:";
  List.iter (fun tn -> Format.fprintf ppf "@,  %a" pp_tone tn) t.tones;
  List.iter
    (fun s -> Format.fprintf ppf "@,  spur[%a] %a" pp_origin s.origin pp_tone s.tone)
    t.spurs;
  Format.fprintf ppf "@,dc = %a V, noise = %.1f dBm@]" I.pp t.dc_volts t.noise_dbm
