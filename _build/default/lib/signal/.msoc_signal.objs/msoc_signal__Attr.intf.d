lib/signal/attr.mli: Format Msoc_util
