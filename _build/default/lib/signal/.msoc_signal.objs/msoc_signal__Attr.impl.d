lib/signal/attr.ml: Array Float Format List Msoc_util
