(** Closed-interval arithmetic.

    The test-translation methodology of the paper tracks every signal
    attribute together with its {e accuracy}: the attribute is not a point
    value but a range induced by the tolerances of the blocks the signal has
    traversed.  This module provides the interval algebra those computations
    are built on.  All operations are outward-conservative: the result
    interval contains every value reachable from points of the operands. *)

type t = private { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** Requires [lo <= hi]. *)

val point : float -> t
(** Degenerate interval [\[x, x\]]. *)

val of_err : float -> err:float -> t
(** [of_err x ~err] is [\[x - |err|, x + |err|\]]. *)

val of_tolerance_pct : float -> pct:float -> t
(** [of_tolerance_pct x ~pct] is [x] plus/minus [pct] percent of [|x|]. *)

val mid : t -> float
(** Midpoint. *)

val err : t -> float
(** Half-width (the "±" part). *)

val width : t -> float
(** Full width [hi - lo]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Requires the divisor not to contain zero. *)

val scale : float -> t -> t
val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b] holds when [a] lies entirely within [b]. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val intersect : t -> t -> t option
val map_monotone : (float -> float) -> t -> t
(** Image under a monotonically increasing function. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
