type line = Row of string list | Separator

type t = { headers : string list; mutable lines : line list }

let create ~headers = { headers; lines = [] }
let add_row t cells = t.lines <- Row cells :: t.lines
let add_separator t = t.lines <- Separator :: t.lines

let pad_to n cells =
  let len = List.length cells in
  if len >= n then cells else cells @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.headers in
  let lines = List.rev t.lines in
  let rows =
    List.filter_map (function Row cells -> Some (pad_to ncols cells) | Separator -> None) lines
  in
  let widths =
    List.mapi
      (fun i header ->
        let cell_width row = String.length (List.nth row i) in
        List.fold_left (fun acc row -> max acc (cell_width row)) (String.length header) rows)
      t.headers
  in
  let buffer = Buffer.create 256 in
  let emit_cells cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i > 0 then Buffer.add_string buffer "  ";
        Buffer.add_string buffer cell;
        if i < ncols - 1 then Buffer.add_string buffer (String.make (w - String.length cell) ' '))
      (pad_to ncols cells);
    Buffer.add_char buffer '\n'
  in
  let total_width = List.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule () = Buffer.add_string buffer (String.make total_width '-' ^ "\n") in
  emit_cells t.headers;
  rule ();
  List.iter (function Row cells -> emit_cells cells | Separator -> rule ()) lines;
  Buffer.contents buffer

let print t = print_string (render t); print_newline ()
let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (100.0 *. x)
