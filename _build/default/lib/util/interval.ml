type t = { lo : float; hi : float }

let make ~lo ~hi =
  assert (lo <= hi);
  { lo; hi }

let point x = { lo = x; hi = x }

let of_err x ~err =
  let e = Float.abs err in
  { lo = x -. e; hi = x +. e }

let of_tolerance_pct x ~pct = of_err x ~err:(Float.abs x *. pct /. 100.0)
let mid t = 0.5 *. (t.lo +. t.hi)
let err t = 0.5 *. (t.hi -. t.lo)
let width t = t.hi -. t.lo
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }
let neg a = { lo = -.a.hi; hi = -.a.lo }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  { lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4) }

let div a b =
  assert (not (b.lo <= 0.0 && b.hi >= 0.0));
  mul a { lo = 1.0 /. b.hi; hi = 1.0 /. b.lo }

let scale k a = if k >= 0.0 then { lo = k *. a.lo; hi = k *. a.hi } else { lo = k *. a.hi; hi = k *. a.lo }
let contains t x = t.lo <= x && x <= t.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let map_monotone f t = { lo = f t.lo; hi = f t.hi }
let equal a b = Float.equal a.lo b.lo && Float.equal a.hi b.hi
let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
