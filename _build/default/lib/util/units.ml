let reference_ohms = 50.0
let two_pi = 2.0 *. Float.pi
let db_of_power_ratio r = 10.0 *. Float.log10 r
let power_ratio_of_db db = Float.pow 10.0 (db /. 10.0)
let db_of_voltage_ratio r = 20.0 *. Float.log10 r
let voltage_ratio_of_db db = Float.pow 10.0 (db /. 20.0)
let dbm_of_watts p = 10.0 *. Float.log10 (p /. 1e-3)
let watts_of_dbm dbm = 1e-3 *. Float.pow 10.0 (dbm /. 10.0)
let dbm_of_vrms ?(ohms = reference_ohms) v = dbm_of_watts (v *. v /. ohms)
let vrms_of_dbm ?(ohms = reference_ohms) dbm = sqrt (watts_of_dbm dbm *. ohms)
let vpeak_of_dbm ?ohms dbm = vrms_of_dbm ?ohms dbm *. sqrt 2.0
let dbm_of_vpeak ?ohms v = dbm_of_vrms ?ohms (v /. sqrt 2.0)
let radians_of_degrees d = d *. Float.pi /. 180.0
let degrees_of_radians r = r *. 180.0 /. Float.pi
