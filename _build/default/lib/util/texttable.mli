(** Plain-text tables for experiment reports.

    The benchmark harness prints every reproduced paper table through this
    module so that all outputs share one layout. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** Multi-line rendering with aligned columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell with a fixed number of decimals (default 2). *)

val cell_pct : ?decimals:int -> float -> string
(** Format a fraction (0..1) as a percentage cell, e.g. [0.123 -> "12.3%"]. *)
