(** Small floating-point helpers shared by the numeric substrates. *)

val approx_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_equal ~rel ~abs a b] holds when [|a - b|] is below [abs] or below
    [rel * max |a| |b|].  Defaults: [rel = 1e-9], [abs = 1e-12]. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into [\[lo, hi\]].  Requires [lo <= hi]. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] points from [10^a] to [10^b], log-spaced. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val mean : float array -> float
(** Arithmetic mean.  Requires a non-empty array. *)

val max_abs : float array -> float
(** Largest absolute value; 0 for an empty array. *)

val fold_range : int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range n ~init ~f] folds [f] over [0 .. n-1]. *)
