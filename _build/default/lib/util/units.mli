(** Unit conversions used throughout the mixed-signal test-synthesis stack.

    Conventions: power gains and signal powers are carried in decibels (dB /
    dBm) at the methodology level, and as linear voltage ratios at the
    waveform-simulation level.  All dBm values assume the reference impedance
    {!reference_ohms} unless stated otherwise. *)

val reference_ohms : float
(** Reference impedance for dBm/volt conversions (50 ohm). *)

val db_of_power_ratio : float -> float
(** [db_of_power_ratio r] is [10 * log10 r].  Requires [r > 0]. *)

val power_ratio_of_db : float -> float
(** Inverse of {!db_of_power_ratio}. *)

val db_of_voltage_ratio : float -> float
(** [db_of_voltage_ratio r] is [20 * log10 r].  Requires [r > 0]. *)

val voltage_ratio_of_db : float -> float
(** Inverse of {!db_of_voltage_ratio}. *)

val dbm_of_watts : float -> float
(** [dbm_of_watts p] is the power [p] (in watts) expressed in dBm. *)

val watts_of_dbm : float -> float
(** Inverse of {!dbm_of_watts}. *)

val dbm_of_vrms : ?ohms:float -> float -> float
(** RMS voltage across [ohms] (default {!reference_ohms}) to dBm. *)

val vrms_of_dbm : ?ohms:float -> float -> float
(** Inverse of {!dbm_of_vrms}. *)

val vpeak_of_dbm : ?ohms:float -> float -> float
(** Peak amplitude of a sine whose power is the given dBm. *)

val dbm_of_vpeak : ?ohms:float -> float -> float
(** Inverse of {!vpeak_of_dbm}. *)

val radians_of_degrees : float -> float
val degrees_of_radians : float -> float

val two_pi : float
(** 2π. *)
