lib/util/texttable.ml: Buffer List Printf String
