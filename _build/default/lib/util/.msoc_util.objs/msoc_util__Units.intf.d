lib/util/units.mli:
