lib/util/floatx.mli:
