lib/util/texttable.mli:
