lib/util/interval.ml: Float Format
