lib/util/prng.mli:
