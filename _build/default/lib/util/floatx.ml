let approx_equal ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let linspace a b n =
  assert (n >= 2);
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let logspace a b n = Array.map (fun e -> Float.pow 10.0 e) (linspace a b n)

(* Kahan summation: the correction term recovers the low-order bits lost when
   accumulating values of very different magnitude (common in spectra). *)
let sum xs =
  let total = ref 0.0 and correction = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !correction in
      let t = !total +. y in
      correction := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  assert (Array.length xs > 0);
  sum xs /. float_of_int (Array.length xs)

let max_abs xs = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs

let fold_range n ~init ~f =
  let rec loop acc i = if i >= n then acc else loop (f acc i) (i + 1) in
  loop init 0
