(* The virtual mixed-signal tester: execute the synthesised measurement
   procedures against a manufactured part and check every result against
   its true value and the predicted error budget.

   Run with:  dune exec examples/virtual_tester.exe *)

module Path = Msoc_analog.Path
module Prng = Msoc_util.Prng
module Texttable = Msoc_util.Texttable
open Msoc_synth

let () =
  let path = Path.default_receiver () in
  let g = Prng.create 2026 in
  let part = Path.sample_part path g in
  Format.printf
    "Sampled a manufactured part (all parameters drawn inside their tolerances)@.@.";

  List.iter
    (fun (label, strategy) ->
      Format.printf "=== %s ===@." label;
      let t =
        Texttable.create
          ~headers:[ "Parameter"; "True"; "Measured"; "Error"; "Budget"; "Verdict" ]
      in
      List.iter
        (fun v ->
          Texttable.add_row t
            [ v.Measure.parameter;
              Printf.sprintf "%.4g" v.Measure.true_value;
              Printf.sprintf "%.4g" v.Measure.measured;
              Printf.sprintf "%+.3g" v.Measure.error;
              Printf.sprintf "±%.3g" v.Measure.budget;
              (if Float.abs v.Measure.error <= v.Measure.budget then "within budget"
               else "OVER BUDGET") ])
        (Measure.validate_part path part ~strategy);
      Texttable.print t;
      Format.printf "@.")
    [ ("nominal-gain de-embedding", Propagate.Nominal_gains);
      ("adaptive de-embedding (path gain & LO measured first)", Propagate.Adaptive) ];

  (* If losses are still unacceptable, the advisor quantifies test points. *)
  Format.printf "=== DFT advisor (limits: FCL 10%%, YL 5%%) ===@.";
  let recs = Dft.recommend path ~max_fcl:0.10 ~max_yl:0.05 in
  if recs = [] then Format.printf "no test points needed@."
  else begin
    let t =
      Texttable.create
        ~headers:[ "Measurement"; "FCL via path"; "FCL with test point"; "YL via path"; "YL with test point" ]
    in
    List.iter
      (fun r ->
        Texttable.add_row t
          [ Spec.block_name r.Dft.measurement.Propagate.spec.Spec.block ^ " "
            ^ Spec.kind_name r.Dft.measurement.Propagate.spec.Spec.kind;
            Texttable.cell_pct r.Dft.losses_without.Coverage.fcl;
            Texttable.cell_pct r.Dft.losses_with.Coverage.fcl;
            Texttable.cell_pct r.Dft.losses_without.Coverage.yl;
            Texttable.cell_pct r.Dft.losses_with.Coverage.yl ])
      recs;
    Texttable.print t
  end
