(* Structural test of a digital FIR filter through spectral comparison,
   at a small scale that runs in about a second (the full 13-tap
   reproduction lives in the benchmark harness).

   Run with:  dune exec examples/filter_fault_sim.exe *)

module Fir_netlist = Msoc_netlist.Fir_netlist
module Netlist = Msoc_netlist.Netlist
module Fault = Msoc_netlist.Fault
module Spectrum = Msoc_dsp.Spectrum
open Msoc_synth

let () =
  let config =
    { Digital_test.default_config with Digital_test.taps = 9; input_bits = 10; coeff_bits = 8 }
  in
  let fir = Digital_test.build config in
  Format.printf "Gate-level filter: %a@." Netlist.pp_stats fir.Fir_netlist.circuit;
  let faults = Digital_test.collapsed_faults fir in
  Format.printf "Collapsed stuck-at faults: %d@.@." (Array.length faults);

  let fs = 1e6 and samples = 1024 in
  let f1 = Digital_test.coherent_tone ~sample_rate:fs ~samples ~target:90e3 in
  let f2 = Digital_test.coherent_tone ~sample_rate:fs ~samples ~target:110e3 in
  let codes =
    Digital_test.ideal_codes config ~sample_rate:fs ~samples ~freqs:[ f1; f2 ]
      ~amplitude_fs:0.45
  in

  (* Spectra of the fault-free filter and of three planted faults, the way
     the paper's Fig. 1 shows them. *)
  let show_spectrum label stream =
    let sp = Digital_test.output_spectrum config fir ~sample_rate:fs stream in
    let bins = Spectrum.bin_count sp in
    (* 16-bucket coarse rendering of the dB spectrum *)
    Format.printf "%-28s " label;
    let buckets = 16 in
    for bucket = 0 to buckets - 1 do
      let lo = 1 + (bucket * (bins - 1) / buckets) in
      let hi = ((bucket + 1) * (bins - 1)) / buckets in
      let peak = ref (-400.0) in
      for k = lo to max lo hi do
        peak := Float.max !peak (Spectrum.power_db sp k)
      done;
      let level = int_of_float ((!peak +. 80.0) /. 18.0) in
      let glyph = [| " "; "."; ":"; "|"; "#" |].(max 0 (min 4 level)) in
      Format.printf "%s" glyph
    done;
    Format.printf "@."
  in
  let good = Fir_netlist.response fir codes in
  show_spectrum "fault-free" good;
  List.iter
    (fun (tap, role) ->
      let fault = Fir_netlist.fault_site fir ~tap ~role in
      let sim = Msoc_netlist.Logic_sim.create fir.Fir_netlist.circuit in
      Msoc_netlist.Logic_sim.inject sim ~node:fault.Fault.node ~lane:0
        ~stuck:fault.Fault.stuck;
      let ybus = Fir_netlist.output_bus fir in
      let stream =
        Array.map
          (fun x ->
            Fir_netlist.drive fir sim x;
            Msoc_netlist.Logic_sim.eval sim;
            let y = Msoc_netlist.Logic_sim.read_bus_lane sim ybus ~lane:0 in
            Msoc_netlist.Logic_sim.tick sim;
            y)
          codes
      in
      show_spectrum
        (Printf.sprintf "fault in tap-%d %s" tap (Fir_netlist.role_name role))
        stream)
    [ (2, Fir_netlist.Multiplier); (5, Fir_netlist.Adder); (7, Fir_netlist.Register) ];

  (* Full spectral fault coverage. *)
  Format.printf "@.Running spectral fault simulation over all %d faults...@."
    (Array.length faults);
  let detection =
    Digital_test.spectral_coverage config fir ~sample_rate:fs ~input_codes:codes
      ~reference_codes:codes ~tone_freqs:[ f1; f2 ] ~faults
  in
  Format.printf "coverage: %.1f%% (%d/%d), comparison floor %.1f dB@."
    (100.0 *. detection.Digital_test.coverage)
    detection.Digital_test.detected detection.Digital_test.total
    detection.Digital_test.noise_floor_db;
  if Array.length detection.Digital_test.undetected_max_dev_lsb > 0 then
    Format.printf
      "undetected faults perturb the output by at most %.3f input LSB (median %.4f)@."
      (Array.fold_left Float.max 0.0 detection.Digital_test.undetected_max_dev_lsb)
      (Msoc_stat.Describe.median detection.Digital_test.undetected_max_dev_lsb)
