(* Quickstart: synthesise a system-level test plan for the paper's receiver
   path (Fig. 6) and print it.

   Run with:  dune exec examples/quickstart.exe *)

module Path = Msoc_analog.Path
open Msoc_synth

let () =
  (* 1. Describe the signal path: Amp -> Mixer(LO) -> LPF -> ADC.  The
     default receiver carries every block's nominal parameters and
     tolerances (the designer's spec). *)
  let path = Path.default_receiver () in
  Format.printf "Receiver: path gain %.1f dB nominal, ADC rate %.0f kHz@."
    (Path.nominal_path_gain_db path)
    (Path.adc_rate_hz path /. 1e3);

  (* 2. Synthesise the test plan: composed tests first (they are the
     adaptive prerequisites), then propagated per-block measurements with
     their error budgets and predicted FCL/YL, then the digital filter
     structural test. *)
  let plan = Plan.synthesize path in
  Format.printf "@.%a@." Plan.pp_summary plan;

  (* 3. Boundary checks guard the composed gains against masking
     (paper Fig. 3). *)
  Format.printf "@.Boundary checks:@.";
  List.iter
    (fun c ->
      Format.printf "  %-55s stimulus %7.1f dBm, SNR >= %.0f dB@." c.Compose.description
        c.Compose.stimulus_dbm c.Compose.min_snr_db)
    plan.Plan.boundary_checks;

  (* 4. Anything whose predicted losses are unacceptable would need DFT. *)
  let flagged = Plan.dft_required plan ~max_fcl:0.25 ~max_yl:0.25 in
  Format.printf "@.Tests needing DFT at (FCL, YL) <= 25%%: %d@." (List.length flagged);
  List.iter
    (fun m -> Format.printf "  %a@." Spec.pp m.Propagate.spec)
    flagged;

  (* 5. Schedule the test program: adaptive prerequisites first. *)
  let steps = Plan.schedule plan in
  Format.printf "@.Test program (%.0f ms tester time):@."
    (1000.0 *. Plan.total_test_time steps);
  List.iter
    (fun s ->
      Format.printf "  %2d. %-34s %2d captures%s@." s.Plan.position s.Plan.name
        s.Plan.captures
        (match s.Plan.prerequisites with
        | [] -> ""
        | l -> "   (after " ^ String.concat ", " l ^ ")"))
    steps
