examples/tolerance_tradeoff.ml: Array Coverage Format List Msoc_analog Msoc_stat Msoc_synth Msoc_util Printf Propagate Spec
