examples/filter_fault_sim.ml: Array Digital_test Float Format List Msoc_dsp Msoc_netlist Msoc_stat Msoc_synth Printf
