examples/virtual_tester.ml: Coverage Dft Float Format List Measure Msoc_analog Msoc_synth Msoc_util Printf Propagate Spec
