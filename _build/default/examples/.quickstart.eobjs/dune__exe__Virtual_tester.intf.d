examples/virtual_tester.mli:
