examples/receiver_test_plan.ml: Accuracy Compose Format List Msoc_analog Msoc_synth Msoc_util Plan Printf Propagate Spec String
