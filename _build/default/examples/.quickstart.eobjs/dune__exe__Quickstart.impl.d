examples/quickstart.ml: Compose Format List Msoc_analog Msoc_synth Plan Propagate Spec String
