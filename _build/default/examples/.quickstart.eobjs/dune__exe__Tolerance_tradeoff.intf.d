examples/tolerance_tradeoff.mli:
