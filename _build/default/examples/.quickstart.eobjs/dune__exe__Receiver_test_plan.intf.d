examples/receiver_test_plan.mli:
