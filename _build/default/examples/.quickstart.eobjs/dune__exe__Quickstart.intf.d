examples/quickstart.mli:
