examples/filter_fault_sim.mli:
