(* Translation of module tests to the system level, in detail: the
   composed parameters, both de-embedding strategies for every propagated
   parameter, and the paper's Fig.-4 adaptive-accuracy improvement.

   Run with:  dune exec examples/receiver_test_plan.exe *)

module Path = Msoc_analog.Path
module Texttable = Msoc_util.Texttable
open Msoc_synth

let () =
  let path = Path.default_receiver () in

  (* Table 1: which parameter of which block needs testing. *)
  Format.printf "=== Parameters to test (paper Table 1) ===@.";
  let t1 = Texttable.create ~headers:[ "Block"; "Parameters" ] in
  List.iter
    (fun (block, kinds) -> Texttable.add_row t1 [ block; String.concat ", " kinds ])
    (Plan.table1 (Plan.synthesize path));
  Texttable.print t1;

  (* Composed tests. *)
  Format.printf "=== Translation by composition ===@.";
  let tc =
    Texttable.create ~headers:[ "Composite"; "Nominal"; "Tolerance"; "Meas. accuracy" ]
  in
  List.iter
    (fun (c : Compose.t) ->
      Texttable.add_row tc
        [ c.Compose.name;
          Printf.sprintf "%.2f %s" c.Compose.nominal c.Compose.unit_label;
          Printf.sprintf "±%.2f" c.Compose.tolerance;
          Printf.sprintf "±%.2f" (Accuracy.worst_case c.Compose.accuracy) ])
    [ Compose.path_gain path; Compose.noise_figure path; Compose.dynamic_range path ];
  Texttable.print tc;

  (* Saturation headroom at the standard level and near the ceiling. *)
  Format.printf "=== Saturation analysis (Fig. 3 boundary conditions) ===@.";
  List.iter
    (fun level ->
      Format.printf "input %.0f dBm:@." level;
      List.iter
        (fun r ->
          Format.printf "  %-6s drive %7.1f dBm  limit %7.1f dBm  headroom %+6.1f dB%s@."
            r.Compose.block r.Compose.drive_dbm r.Compose.limit_dbm r.Compose.headroom_db
            (if r.Compose.headroom_db < 0.0 then "  << SATURATES" else ""))
        (Compose.saturation_analysis path ~input_dbm:level))
    [ Propagate.standard_test_level_dbm; -8.0 ];

  (* Propagated measurements under both strategies. *)
  Format.printf "@.=== Translation by propagation: nominal vs adaptive (Fig. 4) ===@.";
  let tp =
    Texttable.create
      ~headers:[ "Parameter"; "Err (nominal)"; "Err (adaptive)"; "Adaptive prerequisites" ]
  in
  List.iter
    (fun (make : Path.t -> strategy:Propagate.strategy -> Propagate.t) ->
      let nominal = make path ~strategy:Propagate.Nominal_gains in
      let adaptive = make path ~strategy:Propagate.Adaptive in
      Texttable.add_row tp
        [ Spec.block_name nominal.Propagate.spec.Spec.block ^ " "
          ^ Spec.kind_name nominal.Propagate.spec.Spec.kind;
          Printf.sprintf "±%.3g" (Propagate.err nominal);
          Printf.sprintf "±%.3g" (Propagate.err adaptive);
          String.concat ", " adaptive.Propagate.prerequisites ])
    [ Propagate.mixer_iip3; Propagate.amp_iip3; Propagate.mixer_p1db; Propagate.lpf_cutoff;
      Propagate.mixer_lo_isolation ];
  Texttable.print tp;

  (* Full budget detail for the flagship example. *)
  Format.printf "@.=== Mixer IIP3 measurement in full ===@.";
  List.iter
    (fun strategy ->
      Format.printf "%a@.@." Propagate.pp (Propagate.mixer_iip3 path ~strategy))
    [ Propagate.Nominal_gains; Propagate.Adaptive ]
